open Strip_relational

(* A small catalog: emp(name, dept, salary), dept(dname, budget). *)
let setup () =
  let cat = Catalog.create () in
  let emp =
    Catalog.create_table cat ~name:"emp"
      ~schema:
        (Schema.of_list
           [ ("name", Value.TStr); ("dept", Value.TStr); ("salary", Value.TFloat) ])
  in
  ignore (Table.create_index emp ~name:"emp_dept" ~kind:Index.Hash ~cols:[ "dept" ]);
  let dept =
    Catalog.create_table cat ~name:"dept"
      ~schema:(Schema.of_list [ ("dname", Value.TStr); ("budget", Value.TFloat) ])
  in
  List.iter
    (fun (n, d, s) ->
      ignore (Table.insert emp [| Value.Str n; Value.Str d; Value.Float s |]))
    [ ("ann", "eng", 100.0); ("bob", "eng", 80.0); ("cat", "ops", 60.0);
      ("dan", "ops", 70.0); ("eve", "hr", 50.0) ];
  List.iter
    (fun (d, b) ->
      ignore (Table.insert dept [| Value.Str d; Value.Float b |]))
    [ ("eng", 1000.0); ("ops", 500.0) ];
  cat

let run cat plan = Query.run cat ~env:[] plan

let rows_s cat plan =
  List.map
    (fun r -> Array.to_list (Array.map Value.to_string r))
    (Query.rows (run cat plan))

let scan rel = Query.Scan { rel; alias = None }

let test_scan_filter_project () =
  let cat = setup () in
  let plan =
    Query.Project
      ( [ Query.item (Expr.col "name") ],
        Query.Filter (Expr.(col "salary" >: float 65.0), scan "emp") )
  in
  Alcotest.(check (list (list string)))
    "filtered" [ [ "ann" ]; [ "bob" ]; [ "dan" ] ] (rows_s cat plan)

let test_join_hash () =
  let cat = setup () in
  (* dept has no index on dname: hash join path *)
  let plan =
    Query.Project
      ( [ Query.item (Expr.col "name"); Query.item (Expr.col "budget") ],
        Query.Join
          ( scan "emp",
            scan "dept",
            Some Expr.(col ~qual:"emp" "dept" =: col ~qual:"dept" "dname") ) )
  in
  Alcotest.(check int) "join cardinality" 4 (Query.row_count (run cat plan));
  Alcotest.(check bool) "hr dropped (inner join)" true
    (not (List.exists (fun r -> List.hd r = "eve") (rows_s cat plan)))

let test_join_index_path () =
  let cat = setup () in
  Meter.reset ();
  (* emp is indexed on dept: putting it on the right triggers the index
     nested loop *)
  let plan =
    Query.Join
      ( scan "dept",
        scan "emp",
        Some Expr.(col ~qual:"dept" "dname" =: col ~qual:"emp" "dept") )
  in
  Alcotest.(check int) "cardinality" 4 (Query.row_count (run cat plan));
  Alcotest.(check bool) "used the index" true (Meter.get "index_probe" >= 2);
  Alcotest.(check int) "no hash build" 0 (Meter.get "hash_build")

let test_join_residual_predicate () =
  let cat = setup () in
  let plan =
    Query.Join
      ( scan "dept",
        scan "emp",
        Some
          Expr.(
            (col "dname" =: col "dept") &&: (col "salary" >: float 75.0)) )
  in
  Alcotest.(check int) "equi + residual" 2 (Query.row_count (run cat plan))

let test_cross_join () =
  let cat = setup () in
  let plan = Query.Join (scan "emp", scan "dept", None) in
  Alcotest.(check int) "cartesian" 10 (Query.row_count (run cat plan))

let test_group_by () =
  let cat = setup () in
  let plan =
    Query.Group
      {
        keys = [ Query.item (Expr.col "dept") ];
        aggs =
          [
            (Query.Sum (Expr.col "salary"), "total");
            (Query.Count_star, "n");
            (Query.Avg (Expr.col "salary"), "avg_s");
            (Query.Min (Expr.col "salary"), "lo");
            (Query.Max (Expr.col "salary"), "hi");
          ];
        having = None;
        input = scan "emp";
      }
  in
  let rows = rows_s cat plan in
  Alcotest.(check (list (list string)))
    "aggregates"
    [
      [ "eng"; "180.0"; "2"; "90.0"; "80.0"; "100.0" ];
      [ "ops"; "130.0"; "2"; "65.0"; "60.0"; "70.0" ];
      [ "hr"; "50.0"; "1"; "50.0"; "50.0"; "50.0" ];
    ]
    rows

let test_having () =
  let cat = setup () in
  let plan =
    Query.Group
      {
        keys = [ Query.item (Expr.col "dept") ];
        aggs = [ (Query.Count_star, "n") ];
        having = Some Expr.(col "n" >=: int 2);
        input = scan "emp";
      }
  in
  Alcotest.(check int) "having filters groups" 2 (Query.row_count (run cat plan))

let test_global_aggregate_on_empty () =
  let cat = setup () in
  let plan =
    Query.Group
      {
        keys = [];
        aggs = [ (Query.Count_star, "n"); (Query.Sum (Expr.col "salary"), "s") ];
        having = None;
        input = Query.Filter (Expr.(col "salary" >: float 1e9), scan "emp");
      }
  in
  Alcotest.(check (list (list string)))
    "count 0, sum NULL" [ [ "0"; "NULL" ] ] (rows_s cat plan)

let test_order_limit () =
  let cat = setup () in
  let plan =
    Query.Limit
      ( 2,
        Query.Order
          ( [ (Expr.col "salary", Query.Desc) ],
            Query.Project ([ Query.item (Expr.col "name") ], scan "emp") ) )
  in
  (* order refers to a projected-away column? it must be projected; use a
     plan that orders before projecting *)
  ignore plan;
  let plan =
    Query.Project
      ( [ Query.item (Expr.col "name") ],
        Query.Limit
          (2, Query.Order ([ (Expr.col "salary", Query.Desc) ], scan "emp")) )
  in
  Alcotest.(check (list (list string))) "top-2" [ [ "ann" ]; [ "bob" ] ]
    (rows_s cat plan)

let test_bind_pointer_provenance () =
  let cat = setup () in
  (* Direct column outputs keep pointers; computed outputs materialize. *)
  let plan =
    Query.Project
      ( [
          Query.item (Expr.col "name");
          Query.item ~alias:"double_pay" Expr.(col "salary" *: float 2.0);
        ],
        scan "emp" )
  in
  let result = run cat plan in
  let tmp = Query.bind ~name:"b" result in
  Alcotest.(check int) "one pointer slot" 1 (Temp_table.slots tmp);
  (match Temp_table.static_map tmp with
  | [| Temp_table.From_record (0, 0); Temp_table.Computed 0 |] -> ()
  | _ -> Alcotest.fail "unexpected static map");
  (* Bound values reflect bind-time state even after an update. *)
  let emp = Catalog.table_exn cat "emp" in
  let ann = ref None in
  Table.iter emp (fun r ->
      if Value.to_string (Record.value r 0) = "ann" then ann := Some r);
  let ann = Option.get !ann in
  ignore (Table.update emp ann [| Value.Str "ANN2"; Value.Str "eng"; Value.Float 1.0 |]);
  Alcotest.(check bool) "pre-image read through bound table" true
    (List.exists
       (fun row -> Value.to_string row.(0) = "ann")
       (Temp_table.to_rows tmp));
  Temp_table.retire tmp

let test_bind_overrides () =
  let cat = setup () in
  let plan =
    Query.Project
      ( [
          Query.item (Expr.col "name");
          Query.item ~alias:"commit_time" (Expr.float 0.0);
        ],
        scan "emp" )
  in
  let tmp = Query.bind ~overrides:[ ("commit_time", Value.Float 42.5) ] ~name:"b"
      (run cat plan)
  in
  List.iter
    (fun row ->
      Alcotest.(check (float 0.0)) "stamped" 42.5 (Value.to_float row.(1)))
    (Temp_table.to_rows tmp)

let test_partition () =
  let cat = setup () in
  let result = run cat (scan "emp") in
  let parts = Query.partition result ~cols:[ "dept" ] in
  Alcotest.(check int) "three groups" 3 (List.length parts);
  let sizes = List.map (fun (_, r) -> Query.row_count r) parts in
  Alcotest.(check (list int)) "sizes in first-seen order" [ 2; 2; 1 ] sizes;
  match Query.partition result ~cols:[ "nope" ] with
  | exception Query.Plan_error _ -> ()
  | _ -> Alcotest.fail "unknown partition column accepted"

let test_unknown_relation () =
  let cat = setup () in
  match run cat (scan "ghost") with
  | exception Query.Plan_error _ -> ()
  | _ -> Alcotest.fail "unknown relation accepted"

let test_schema_of_matches_execution () =
  let cat = setup () in
  let plan =
    Query.Group
      {
        keys = [ Query.item (Expr.col "dept") ];
        aggs = [ (Query.Sum (Expr.col "salary"), "total") ];
        having = None;
        input = scan "emp";
      }
  in
  let static = Query.schema_of cat ~env:[] plan in
  let dynamic = Query.result_schema (run cat plan) in
  Alcotest.(check bool) "layouts agree" true (Schema.equal_layout static dynamic)

let suite =
  [
    ( "query",
      [
        Alcotest.test_case "scan/filter/project" `Quick test_scan_filter_project;
        Alcotest.test_case "hash join" `Quick test_join_hash;
        Alcotest.test_case "index nested-loop join" `Quick test_join_index_path;
        Alcotest.test_case "equi + residual predicate" `Quick test_join_residual_predicate;
        Alcotest.test_case "cross join" `Quick test_cross_join;
        Alcotest.test_case "group by with all aggregates" `Quick test_group_by;
        Alcotest.test_case "having" `Quick test_having;
        Alcotest.test_case "global aggregate over empty input" `Quick
          test_global_aggregate_on_empty;
        Alcotest.test_case "order by / limit" `Quick test_order_limit;
        Alcotest.test_case "bind keeps pointer provenance (§6.1)" `Quick
          test_bind_pointer_provenance;
        Alcotest.test_case "bind overrides stamp columns" `Quick test_bind_overrides;
        Alcotest.test_case "partition by columns" `Quick test_partition;
        Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
        Alcotest.test_case "schema_of agrees with execution" `Quick
          test_schema_of_matches_execution;
      ] );
  ]
