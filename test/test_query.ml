open Strip_relational

(* A small catalog: emp(name, dept, salary), dept(dname, budget). *)
let setup () =
  let cat = Catalog.create () in
  let emp =
    Catalog.create_table cat ~name:"emp"
      ~schema:
        (Schema.of_list
           [ ("name", Value.TStr); ("dept", Value.TStr); ("salary", Value.TFloat) ])
  in
  ignore (Table.create_index emp ~name:"emp_dept" ~kind:Index.Hash ~cols:[ "dept" ]);
  let dept =
    Catalog.create_table cat ~name:"dept"
      ~schema:(Schema.of_list [ ("dname", Value.TStr); ("budget", Value.TFloat) ])
  in
  List.iter
    (fun (n, d, s) ->
      ignore (Table.insert emp [| Value.Str n; Value.Str d; Value.Float s |]))
    [ ("ann", "eng", 100.0); ("bob", "eng", 80.0); ("cat", "ops", 60.0);
      ("dan", "ops", 70.0); ("eve", "hr", 50.0) ];
  List.iter
    (fun (d, b) ->
      ignore (Table.insert dept [| Value.Str d; Value.Float b |]))
    [ ("eng", 1000.0); ("ops", 500.0) ];
  cat

let run cat plan = Query.run cat ~env:[] plan

let rows_s cat plan =
  List.map
    (fun r -> Array.to_list (Array.map Value.to_string r))
    (Query.rows (run cat plan))

let scan rel = Query.Scan { rel; alias = None }

let test_scan_filter_project () =
  let cat = setup () in
  let plan =
    Query.Project
      ( [ Query.item (Expr.col "name") ],
        Query.Filter (Expr.(col "salary" >: float 65.0), scan "emp") )
  in
  Alcotest.(check (list (list string)))
    "filtered" [ [ "ann" ]; [ "bob" ]; [ "dan" ] ] (rows_s cat plan)

let test_join_hash () =
  let cat = setup () in
  (* dept has no index on dname: hash join path *)
  let plan =
    Query.Project
      ( [ Query.item (Expr.col "name"); Query.item (Expr.col "budget") ],
        Query.Join
          ( scan "emp",
            scan "dept",
            Some Expr.(col ~qual:"emp" "dept" =: col ~qual:"dept" "dname") ) )
  in
  Alcotest.(check int) "join cardinality" 4 (Query.row_count (run cat plan));
  Alcotest.(check bool) "hr dropped (inner join)" true
    (not (List.exists (fun r -> List.hd r = "eve") (rows_s cat plan)))

let test_join_index_path () =
  let cat = setup () in
  Meter.reset ();
  (* emp is indexed on dept: putting it on the right triggers the index
     nested loop *)
  let plan =
    Query.Join
      ( scan "dept",
        scan "emp",
        Some Expr.(col ~qual:"dept" "dname" =: col ~qual:"emp" "dept") )
  in
  Alcotest.(check int) "cardinality" 4 (Query.row_count (run cat plan));
  Alcotest.(check bool) "used the index" true (Meter.get "index_probe" >= 2);
  Alcotest.(check int) "no hash build" 0 (Meter.get "hash_build")

let test_join_residual_predicate () =
  let cat = setup () in
  let plan =
    Query.Join
      ( scan "dept",
        scan "emp",
        Some
          Expr.(
            (col "dname" =: col "dept") &&: (col "salary" >: float 75.0)) )
  in
  Alcotest.(check int) "equi + residual" 2 (Query.row_count (run cat plan))

let test_cross_join () =
  let cat = setup () in
  let plan = Query.Join (scan "emp", scan "dept", None) in
  Alcotest.(check int) "cartesian" 10 (Query.row_count (run cat plan))

let test_group_by () =
  let cat = setup () in
  let plan =
    Query.Group
      {
        keys = [ Query.item (Expr.col "dept") ];
        aggs =
          [
            (Query.Sum (Expr.col "salary"), "total");
            (Query.Count_star, "n");
            (Query.Avg (Expr.col "salary"), "avg_s");
            (Query.Min (Expr.col "salary"), "lo");
            (Query.Max (Expr.col "salary"), "hi");
          ];
        having = None;
        input = scan "emp";
      }
  in
  let rows = rows_s cat plan in
  Alcotest.(check (list (list string)))
    "aggregates"
    [
      [ "eng"; "180.0"; "2"; "90.0"; "80.0"; "100.0" ];
      [ "ops"; "130.0"; "2"; "65.0"; "60.0"; "70.0" ];
      [ "hr"; "50.0"; "1"; "50.0"; "50.0"; "50.0" ];
    ]
    rows

let test_having () =
  let cat = setup () in
  let plan =
    Query.Group
      {
        keys = [ Query.item (Expr.col "dept") ];
        aggs = [ (Query.Count_star, "n") ];
        having = Some Expr.(col "n" >=: int 2);
        input = scan "emp";
      }
  in
  Alcotest.(check int) "having filters groups" 2 (Query.row_count (run cat plan))

let test_global_aggregate_on_empty () =
  let cat = setup () in
  let plan =
    Query.Group
      {
        keys = [];
        aggs = [ (Query.Count_star, "n"); (Query.Sum (Expr.col "salary"), "s") ];
        having = None;
        input = Query.Filter (Expr.(col "salary" >: float 1e9), scan "emp");
      }
  in
  Alcotest.(check (list (list string)))
    "count 0, sum NULL" [ [ "0"; "NULL" ] ] (rows_s cat plan)

let test_order_limit () =
  let cat = setup () in
  let plan =
    Query.Limit
      ( 2,
        Query.Order
          ( [ (Expr.col "salary", Query.Desc) ],
            Query.Project ([ Query.item (Expr.col "name") ], scan "emp") ) )
  in
  (* order refers to a projected-away column? it must be projected; use a
     plan that orders before projecting *)
  ignore plan;
  let plan =
    Query.Project
      ( [ Query.item (Expr.col "name") ],
        Query.Limit
          (2, Query.Order ([ (Expr.col "salary", Query.Desc) ], scan "emp")) )
  in
  Alcotest.(check (list (list string))) "top-2" [ [ "ann" ]; [ "bob" ] ]
    (rows_s cat plan)

let test_bind_pointer_provenance () =
  let cat = setup () in
  (* Direct column outputs keep pointers; computed outputs materialize. *)
  let plan =
    Query.Project
      ( [
          Query.item (Expr.col "name");
          Query.item ~alias:"double_pay" Expr.(col "salary" *: float 2.0);
        ],
        scan "emp" )
  in
  let result = run cat plan in
  let tmp = Query.bind ~name:"b" result in
  Alcotest.(check int) "one pointer slot" 1 (Temp_table.slots tmp);
  (match Temp_table.static_map tmp with
  | [| Temp_table.From_record (0, 0); Temp_table.Computed 0 |] -> ()
  | _ -> Alcotest.fail "unexpected static map");
  (* Bound values reflect bind-time state even after an update. *)
  let emp = Catalog.table_exn cat "emp" in
  let ann = ref None in
  Table.iter emp (fun r ->
      if Value.to_string (Record.value r 0) = "ann" then ann := Some r);
  let ann = Option.get !ann in
  ignore (Table.update emp ann [| Value.Str "ANN2"; Value.Str "eng"; Value.Float 1.0 |]);
  Alcotest.(check bool) "pre-image read through bound table" true
    (List.exists
       (fun row -> Value.to_string row.(0) = "ann")
       (Temp_table.to_rows tmp));
  Temp_table.retire tmp

let test_bind_overrides () =
  let cat = setup () in
  let plan =
    Query.Project
      ( [
          Query.item (Expr.col "name");
          Query.item ~alias:"commit_time" (Expr.float 0.0);
        ],
        scan "emp" )
  in
  let tmp = Query.bind ~overrides:[ ("commit_time", Value.Float 42.5) ] ~name:"b"
      (run cat plan)
  in
  List.iter
    (fun row ->
      Alcotest.(check (float 0.0)) "stamped" 42.5 (Value.to_float row.(1)))
    (Temp_table.to_rows tmp)

let test_partition () =
  let cat = setup () in
  let result = run cat (scan "emp") in
  let parts = Query.partition result ~cols:[ "dept" ] in
  Alcotest.(check int) "three groups" 3 (List.length parts);
  let sizes = List.map (fun (_, r) -> Query.row_count r) parts in
  Alcotest.(check (list int)) "sizes in first-seen order" [ 2; 2; 1 ] sizes;
  match Query.partition result ~cols:[ "nope" ] with
  | exception Query.Plan_error _ -> ()
  | _ -> Alcotest.fail "unknown partition column accepted"

let test_unknown_relation () =
  let cat = setup () in
  match run cat (scan "ghost") with
  | exception Query.Plan_error _ -> ()
  | _ -> Alcotest.fail "unknown relation accepted"

(* ------------------------------------------------------------------ *)
(* Join strategy selection: explain snapshots and physical paths *)

(* Two three-row tables joined on [k]; index layout varies per test. *)
let setup_kv ?(l_index = None) ?(r_index = None) () =
  let cat = Catalog.create () in
  let l =
    Catalog.create_table cat ~name:"l"
      ~schema:(Schema.of_list [ ("k", Value.TInt); ("a", Value.TStr) ])
  in
  let r =
    Catalog.create_table cat ~name:"r"
      ~schema:(Schema.of_list [ ("k", Value.TInt); ("b", Value.TStr) ])
  in
  (match l_index with
  | Some kind -> ignore (Table.create_index l ~name:"l_k" ~kind ~cols:[ "k" ])
  | None -> ());
  (match r_index with
  | Some kind -> ignore (Table.create_index r ~name:"r_k" ~kind ~cols:[ "k" ])
  | None -> ());
  List.iter
    (fun (k, a) -> ignore (Table.insert l [| Value.Int k; Value.Str a |]))
    [ (3, "x"); (1, "y"); (2, "z"); (1, "w") ];
  List.iter
    (fun (k, b) -> ignore (Table.insert r [| Value.Int k; Value.Str b |]))
    [ (2, "p"); (1, "q"); (9, "s") ];
  cat

let join_on_k =
  Query.Join
    ( scan "l",
      scan "r",
      Some Expr.(col ~qual:"l" "k" =: col ~qual:"r" "k") )

let test_explain_snapshots () =
  let snap cat plan = Query.explain ~cat plan in
  (* both sides tree-indexed on the equi column: merge join *)
  let cat =
    setup_kv ~l_index:(Some Index.Ordered) ~r_index:(Some Index.Ordered) ()
  in
  Alcotest.(check string) "merge join chosen"
    "join on (l.k = r.k) [merge join via l_k, r_k]\n  scan l\n  scan r"
    (snap cat join_on_k);
  (* only the right side indexed (any kind): index join *)
  let cat = setup_kv ~r_index:(Some Index.Hash) () in
  Alcotest.(check string) "index join chosen"
    "join on (l.k = r.k) [index join via r_k]\n  scan l\n  scan r"
    (snap cat join_on_k);
  (* equi join, no usable index: hash join *)
  let cat = setup_kv () in
  Alcotest.(check string) "hash join otherwise"
    "join on (l.k = r.k) [hash join]\n  scan l\n  scan r"
    (snap cat join_on_k);
  (* non-equi predicate: nested loop, even with indexes present *)
  let cat =
    setup_kv ~l_index:(Some Index.Ordered) ~r_index:(Some Index.Ordered) ()
  in
  let nonequi =
    Query.Join
      ( scan "l",
        scan "r",
        Some Expr.(col ~qual:"l" "k" <: col ~qual:"r" "k") )
  in
  Alcotest.(check string) "nested loop for non-equi"
    "join on (l.k < r.k) [nested loop]\n  scan l\n  scan r"
    (Query.explain ~cat nonequi);
  (* without ?cat there is no catalog to consult: no annotation *)
  Alcotest.(check string) "no annotation without a catalog"
    "join on (l.k = r.k)\n  scan l\n  scan r"
    (Query.explain join_on_k);
  (* a later CREATE INDEX upgrades the choice (plan cache revalidation) *)
  let cat = setup_kv () in
  ignore (Query.row_count (run cat join_on_k));
  ignore
    (Table.create_index (Catalog.table_exn cat "r") ~name:"r_k"
       ~kind:Index.Hash ~cols:[ "k" ]);
  Alcotest.(check string) "index created after first run is picked up"
    "join on (l.k = r.k) [index join via r_k]\n  scan l\n  scan r"
    (snap cat join_on_k)

let test_merge_join_execution () =
  let cat =
    setup_kv ~l_index:(Some Index.Ordered) ~r_index:(Some Index.Ordered) ()
  in
  Meter.reset ();
  let got =
    List.map
      (fun row -> Array.to_list (Array.map Value.to_string row))
      (Query.rows (run cat join_on_k))
  in
  (* merge output streams in ascending key order; duplicate left keys fan
     out over the matching right rows *)
  Alcotest.(check (list (list string)))
    "rows in key order"
    [
      [ "1"; "y"; "1"; "q" ]; [ "1"; "w"; "1"; "q" ]; [ "2"; "z"; "2"; "p" ];
    ]
    got;
  Alcotest.(check int) "one ordered scan per side" 2 (Meter.get "index_probe");
  Alcotest.(check bool) "merge steps ticked" true (Meter.get "merge_step" > 0);
  Alcotest.(check int) "no hash build" 0 (Meter.get "hash_build");
  Alcotest.(check int) "joined rows metered" 3 (Meter.get "join_row")

(* The physical index-probe path and its hash-build fallback must be
   observationally identical: same rows, same order, same meter ticks. *)
let test_index_join_differential () =
  let observe () =
    let cat = setup_kv ~r_index:(Some Index.Hash) () in
    Meter.reset ();
    let before = Meter.snapshot () in
    let rows =
      List.map
        (fun row -> Array.to_list (Array.map Value.to_string row))
        (Query.rows (run cat join_on_k))
    in
    (rows, Meter.diff before (Meter.snapshot ()))
  in
  let rows_fast, ticks_fast = observe () in
  Query.physical_index_join := false;
  let rows_slow, ticks_slow =
    Fun.protect
      ~finally:(fun () -> Query.physical_index_join := true)
      observe
  in
  Alcotest.(check (list (list string)))
    "same rows, same order" rows_fast rows_slow;
  Alcotest.(check (list (pair string int)))
    "same meter deltas" ticks_fast ticks_slow;
  Alcotest.(check bool) "the probe path really probed" true
    (List.mem_assoc "index_probe" ticks_fast)

(* Metering off = zero cost: no counter moves.  Metering on: the cell fast
   path ticks exactly like the named path. *)
let test_meter_join_row_zero_cost () =
  let cat = setup_kv () in
  Meter.reset ();
  Meter.enabled := false;
  let before = Meter.snapshot () in
  ignore (Query.row_count (run cat join_on_k));
  let silent = Meter.diff before (Meter.snapshot ()) in
  Meter.enabled := true;
  Alcotest.(check (list (pair string int)))
    "no ticks while disabled" [] silent;
  Alcotest.(check int) "join_row untouched" 0 (Meter.get "join_row");
  (* re-enabled: the same query meters exactly as before the rework *)
  let before = Meter.snapshot () in
  ignore (Query.row_count (run cat join_on_k));
  let ticks = Meter.diff before (Meter.snapshot ()) in
  Alcotest.(check int) "join_row per joined row" 3
    (List.assoc "join_row" ticks);
  Alcotest.(check int) "hash probe per left row" 4
    (List.assoc "hash_probe" ticks)

let test_schema_of_matches_execution () =
  let cat = setup () in
  let plan =
    Query.Group
      {
        keys = [ Query.item (Expr.col "dept") ];
        aggs = [ (Query.Sum (Expr.col "salary"), "total") ];
        having = None;
        input = scan "emp";
      }
  in
  let static = Query.schema_of cat ~env:[] plan in
  let dynamic = Query.result_schema (run cat plan) in
  Alcotest.(check bool) "layouts agree" true (Schema.equal_layout static dynamic)

let suite =
  [
    ( "query",
      [
        Alcotest.test_case "scan/filter/project" `Quick test_scan_filter_project;
        Alcotest.test_case "hash join" `Quick test_join_hash;
        Alcotest.test_case "index nested-loop join" `Quick test_join_index_path;
        Alcotest.test_case "equi + residual predicate" `Quick test_join_residual_predicate;
        Alcotest.test_case "cross join" `Quick test_cross_join;
        Alcotest.test_case "group by with all aggregates" `Quick test_group_by;
        Alcotest.test_case "having" `Quick test_having;
        Alcotest.test_case "global aggregate over empty input" `Quick
          test_global_aggregate_on_empty;
        Alcotest.test_case "order by / limit" `Quick test_order_limit;
        Alcotest.test_case "bind keeps pointer provenance (§6.1)" `Quick
          test_bind_pointer_provenance;
        Alcotest.test_case "bind overrides stamp columns" `Quick test_bind_overrides;
        Alcotest.test_case "partition by columns" `Quick test_partition;
        Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
        Alcotest.test_case "schema_of agrees with execution" `Quick
          test_schema_of_matches_execution;
        Alcotest.test_case "explain strategy snapshots" `Quick
          test_explain_snapshots;
        Alcotest.test_case "merge join execution" `Quick
          test_merge_join_execution;
        Alcotest.test_case "index join physical/fallback differential" `Quick
          test_index_join_differential;
        Alcotest.test_case "metering disabled is zero-cost" `Quick
          test_meter_join_row_zero_cost;
      ] );
  ]
