open Strip_market

let small_cfg =
  {
    Feed.default_config with
    Feed.n_stocks = 200;
    duration = 300.0;
    target_updates = 3000;
    seed = 7;
  }

let test_zipf_weights () =
  let w = Zipf.weights ~n:100 ~s:0.8 in
  Alcotest.(check (float 1e-9)) "normalized" 1.0 (Array.fold_left ( +. ) 0.0 w);
  Alcotest.(check bool) "decreasing" true
    (Array.for_all (fun ok -> ok)
       (Array.init 99 (fun i -> w.(i) >= w.(i + 1))));
  let flat = Zipf.power w 0.0 in
  Alcotest.(check (float 1e-9)) "power 0 flattens" (1.0 /. 100.0) flat.(0)

let test_zipf_sampler_bias () =
  let w = Zipf.weights ~n:50 ~s:1.0 in
  let sampler = Zipf.sampler w in
  let rng = Random.State.make [| 3 |] in
  let counts = Array.make 50 0 in
  for _ = 1 to 20000 do
    let i = Zipf.sample sampler rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "head dominates tail" true (counts.(0) > 4 * counts.(40));
  (* rough agreement with the weights for the head element *)
  let f0 = float_of_int counts.(0) /. 20000.0 in
  Alcotest.(check bool) "head frequency ~ weight" true
    (Float.abs (f0 -. w.(0)) < 0.05)

let test_sample_distinct () =
  let w = Zipf.weights ~n:20 ~s:0.9 in
  let sampler = Zipf.sampler w in
  let rng = Random.State.make [| 5 |] in
  let picks = Zipf.sample_distinct sampler rng ~k:20 ~n:20 in
  let sorted = Array.copy picks in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "exhaustive distinct" (Array.init 20 (fun i -> i)) sorted;
  match Zipf.sample_distinct sampler rng ~k:21 ~n:20 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k > n accepted"

let test_feed_determinism_and_volume () =
  let q1 = Feed.generate small_cfg and q2 = Feed.generate small_cfg in
  Alcotest.(check int) "deterministic" (Array.length q1) (Array.length q2);
  Alcotest.(check bool) "identical" true (q1 = q2);
  let n = Array.length q1 in
  Alcotest.(check bool) "close to target volume" true
    (float_of_int (abs (n - small_cfg.Feed.target_updates))
    < 0.2 *. float_of_int small_cfg.Feed.target_updates);
  let other = Feed.generate { small_cfg with Feed.seed = 8 } in
  Alcotest.(check bool) "seed matters" true (q1 <> other)

let test_feed_well_formed () =
  let quotes = Feed.generate small_cfg in
  let sorted = ref true and in_range = ref true and on_grid = ref true in
  let prev = ref neg_infinity in
  Array.iter
    (fun (q : Feed.quote) ->
      if q.Feed.time < !prev then sorted := false;
      prev := q.Feed.time;
      if q.Feed.time < 0.0 || q.Feed.time >= small_cfg.Feed.duration then
        in_range := false;
      if q.Feed.stock < 0 || q.Feed.stock >= small_cfg.Feed.n_stocks then
        in_range := false;
      if q.Feed.price <= 0.0 then in_range := false;
      let eighths = q.Feed.price /. 0.125 in
      if Float.abs (eighths -. Float.round eighths) > 1e-9 then on_grid := false)
    quotes;
  Alcotest.(check bool) "sorted by time" true !sorted;
  Alcotest.(check bool) "ranges" true !in_range;
  Alcotest.(check bool) "prices in eighths" true !on_grid

let test_feed_every_quote_changes_price () =
  let quotes = Feed.generate small_cfg in
  let last = Hashtbl.create 256 in
  let all_change = ref true in
  Array.iter
    (fun (q : Feed.quote) ->
      (match Hashtbl.find_opt last q.Feed.stock with
      | Some p when p = q.Feed.price -> all_change := false
      | _ -> ());
      Hashtbl.replace last q.Feed.stock q.Feed.price)
    quotes;
  Alcotest.(check bool) "no no-op quotes" true !all_change

let test_feed_activity_skew () =
  let quotes = Feed.generate small_cfg in
  let counts = Array.make small_cfg.Feed.n_stocks 0 in
  Array.iter (fun (q : Feed.quote) -> counts.(q.Feed.stock) <- counts.(q.Feed.stock) + 1) quotes;
  Alcotest.(check bool) "stock 0 beats the median stock" true
    (counts.(0) > 3 * counts.(small_cfg.Feed.n_stocks / 2))

let test_feed_intra_burst_gap_floor () =
  (* Same-stock gaps are dominated by the gap floor: sub-half-second
     re-quotes (what a 0.5 s delay window could batch) are rare, and the
     median same-stock gap sits well above the floor.  This is the temporal
     structure behind the Figure-12 crossover. *)
  let quotes = Feed.generate small_cfg in
  let last = Hashtbl.create 256 in
  let close = ref 0 and total = ref 0 and gaps = ref [] in
  Array.iter
    (fun (q : Feed.quote) ->
      (match Hashtbl.find_opt last q.Feed.stock with
      | Some t ->
        incr total;
        gaps := (q.Feed.time -. t) :: !gaps;
        if q.Feed.time -. t < 0.5 then incr close
      | None -> ());
      Hashtbl.replace last q.Feed.stock q.Feed.time)
    quotes;
  Alcotest.(check bool) "sub-0.5s re-quotes rare" true
    (float_of_int !close < 0.15 *. float_of_int (max 1 !total));
  let sorted = List.sort Float.compare !gaps in
  let median = List.nth sorted (List.length sorted / 2) in
  Alcotest.(check bool) "median gap above the floor" true
    (median > small_cfg.Feed.burst_gap_min)

let test_scaled () =
  let s = Feed.scaled small_cfg 0.1 in
  Alcotest.(check (float 1e-9)) "duration" 30.0 s.Feed.duration;
  Alcotest.(check int) "updates" 300 s.Feed.target_updates;
  Alcotest.(check int) "stocks untouched" 200 s.Feed.n_stocks

let test_symbols () =
  Alcotest.(check string) "0" "A" (Taq.symbol 0);
  Alcotest.(check string) "25" "Z" (Taq.symbol 25);
  Alcotest.(check string) "26" "AA" (Taq.symbol 26);
  Alcotest.(check string) "701" "ZZ" (Taq.symbol 701);
  Alcotest.(check string) "702" "AAA" (Taq.symbol 702)

let prop_symbol_round_trip =
  QCheck2.Test.make ~name:"symbol <-> index round trip" ~count:500
    QCheck2.Gen.(int_range 0 100000)
    (fun i -> Taq.stock_of_symbol (Taq.symbol i) = i)

let test_taq_round_trip () =
  let quotes = Feed.generate { small_cfg with Feed.target_updates = 500 } in
  let reloaded = Taq.of_lines (Taq.to_lines quotes) in
  Alcotest.(check int) "count preserved" (Array.length quotes) (Array.length reloaded);
  (* timestamps are second-truncated then spread evenly within the second *)
  let ok = ref true in
  Array.iteri
    (fun i (q : Feed.quote) ->
      let orig = quotes.(i) in
      if Float.abs (q.Feed.time -. orig.Feed.time) >= 1.0 then ok := false;
      if Float.abs (q.Feed.price -. orig.Feed.price) > 1e-9 then ok := false)
    reloaded;
  Alcotest.(check bool) "times within 1s, prices exact" true !ok

let test_taq_spreading () =
  (* the paper's example: 3 quotes in second 54 land at 54.0, 54.33, 54.67 *)
  let lines = [ "A,54,9.875,10.125"; "B,54,19.875,20.125"; "C,54,29.875,30.125" ] in
  let quotes = Taq.of_lines lines in
  Alcotest.(check (list (float 0.01)))
    "evenly spread"
    [ 54.0; 54.333; 54.667 ]
    (Array.to_list (Array.map (fun (q : Feed.quote) -> q.Feed.time) quotes));
  Alcotest.(check (float 1e-9)) "midpoint price" 10.0 quotes.(0).Feed.price

let test_taq_save_load_file () =
  let quotes = Feed.generate { small_cfg with Feed.target_updates = 200 } in
  let path = Filename.temp_file "strip_taq" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Taq.save path quotes;
      let reloaded = Taq.load path in
      Alcotest.(check int) "count" (Array.length quotes) (Array.length reloaded))

let test_taq_malformed () =
  match Taq.of_lines [ "NOT A LINE" ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed line accepted"

let suite =
  [
    ( "market",
      [
        Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
        Alcotest.test_case "alias sampler bias" `Quick test_zipf_sampler_bias;
        Alcotest.test_case "distinct sampling" `Quick test_sample_distinct;
        Alcotest.test_case "feed determinism & volume" `Quick
          test_feed_determinism_and_volume;
        Alcotest.test_case "feed well-formedness" `Quick test_feed_well_formed;
        Alcotest.test_case "every quote changes the price" `Quick
          test_feed_every_quote_changes_price;
        Alcotest.test_case "activity skew" `Quick test_feed_activity_skew;
        Alcotest.test_case "intra-burst gap floor" `Quick test_feed_intra_burst_gap_floor;
        Alcotest.test_case "scaling" `Quick test_scaled;
        Alcotest.test_case "ticker symbols" `Quick test_symbols;
        QCheck_alcotest.to_alcotest prop_symbol_round_trip;
        Alcotest.test_case "TAQ round trip" `Quick test_taq_round_trip;
        Alcotest.test_case "TAQ same-second spreading (§4.1)" `Quick test_taq_spreading;
        Alcotest.test_case "TAQ file save/load" `Quick test_taq_save_load_file;
        Alcotest.test_case "TAQ malformed input" `Quick test_taq_malformed;
      ] );
  ]
