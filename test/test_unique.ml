open Strip_relational
open Strip_txn
open Strip_core

(* The paper's running example (Figures 4 and 5): stocks S1..S3, composites
   C1 = 0.5*S1 + 0.5*S3 and C2 = 0.3*S1 + 0.7*S2; transaction T1 changes S1
   30->31 and S2 40->39, T2 changes S2 39->38 and S3 50->51. *)
let setup () =
  let db = Strip_db.create () in
  Strip_db.exec_script db
    {|create table stocks (symbol string, price float);
      create index stocks_sym on stocks (symbol);
      create table comps_list (comp string, symbol string, weight float);
      create index cl_sym on comps_list (symbol);
      create table comp_prices (comp string, price float);
      create index cp_comp on comp_prices (comp);
      insert into stocks values ('S1', 30.0), ('S2', 40.0), ('S3', 50.0);
      insert into comps_list values
        ('C1','S1',0.5), ('C1','S3',0.5), ('C2','S1',0.3), ('C2','S2',0.7);
      insert into comp_prices values ('C1', 40.0), ('C2', 37.0)|};
  db

let condition =
  {|select comp, comps_list.symbol as symbol, weight,
           old.price as old_price, new.price as new_price
    from comps_list, new, old
    where comps_list.symbol = new.symbol
      and new.execute_order = old.execute_order
    bind as matches|}

let apply_batches db = (* the standard grouped-apply user function *)
  fun ctx ->
    let r =
      Transaction.query ctx.Rule_manager.txn
        "select comp, sum((new_price - old_price) * weight) as diff from \
         matches group by comp"
    in
    List.iter
      (fun row ->
        ignore
          (Transaction.exec ctx.Rule_manager.txn
             (Printf.sprintf "update comp_prices set price += %.17g where comp = '%s'"
                (Value.to_float row.(1))
                (Value.to_string row.(0)))))
      (Query.rows r);
    ignore db

let t1_t2 db =
  Strip_db.submit_update db ~at:0.0 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'");
      ignore (Transaction.exec txn "update stocks set price = 39.0 where symbol = 'S2'"));
  Strip_db.submit_update db ~at:0.3 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 38.0 where symbol = 'S2'");
      ignore (Transaction.exec txn "update stocks set price = 51.0 where symbol = 'S3'"))

let comp_prices db =
  List.map
    (fun row -> (Value.to_string row.(0), Value.to_float row.(1)))
    (Strip_db.query_rows db "select comp, price from comp_prices order by comp")

let expected = [ ("C1", 41.0); ("C2", 35.9) ]
(* C1 = 40 + 0.5*(31-30) + 0.5*(51-50); C2 = 37 + 0.3*1 + 0.7*(-1) + 0.7*(-1) *)

let check_prices db =
  Alcotest.(check (list (pair string (float 1e-9)))) "view correct" expected
    (comp_prices db)

let test_coarse_unique_merges () =
  let db = setup () in
  Strip_db.register_function db "f" (apply_batches db);
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r on stocks when updated price if %s then execute f \
        unique after 1.0 seconds"
       condition);
  t1_t2 db;
  Strip_db.run db;
  let mgr = Strip_db.rules db in
  Alcotest.(check int) "two firings" 2 (Rule_manager.n_rule_firings mgr);
  Alcotest.(check int) "one transaction (Figure 5b)" 1
    (Rule_manager.n_tasks_created mgr);
  Alcotest.(check int) "one merge" 1 (Rule_manager.n_merges mgr);
  check_prices db

let test_unique_on_comp_partitions () =
  let db = setup () in
  Strip_db.register_function db "f" (apply_batches db);
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r on stocks when updated price if %s then execute f \
        unique on comp after 1.0 seconds"
       condition);
  t1_t2 db;
  Strip_db.run db;
  let mgr = Strip_db.rules db in
  (* Figure 5(c): one transaction per composite; T2's rows merge into them. *)
  Alcotest.(check int) "two transactions" 2 (Rule_manager.n_tasks_created mgr);
  Alcotest.(check int) "both partitions of T2 merged" 2 (Rule_manager.n_merges mgr);
  check_prices db

let test_non_unique_figure5a () =
  let db = setup () in
  Strip_db.register_function db "f" (apply_batches db);
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r on stocks when updated price if %s then execute f"
       condition);
  t1_t2 db;
  Strip_db.run db;
  Alcotest.(check int) "two distinct transactions (Figure 5a)" 2
    (Rule_manager.n_tasks_created (Strip_db.rules db));
  check_prices db

let test_merge_stops_once_started () =
  let db = setup () in
  let batch_sizes = ref [] in
  Strip_db.register_function db "f" (fun ctx ->
      batch_sizes :=
        Query.row_count
          (Transaction.query ctx.Rule_manager.txn "select comp from matches")
        :: !batch_sizes);
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r on stocks when updated price if %s then execute f \
        unique after 1.0 seconds"
       condition);
  (* first batch: t=0 and t=0.5 merge (release at 1.0); the update at t=5
     arrives after the task ran and must start a new transaction *)
  Strip_db.submit_update db ~at:0.0 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'"));
  Strip_db.submit_update db ~at:0.5 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 32.0 where symbol = 'S1'"));
  Strip_db.submit_update db ~at:5.0 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 33.0 where symbol = 'S1'"));
  Strip_db.run db;
  Alcotest.(check (list int)) "batch sizes" [ 4; 2 ] (List.rev !batch_sizes);
  Alcotest.(check int) "two transactions" 2
    (Rule_manager.n_tasks_created (Strip_db.rules db))

let test_two_rules_one_function_merge () =
  (* Bound tables of all rules executing the same function are combined
     (§2) — here an insert rule and an update rule feed one function. *)
  let db = setup () in
  let total_rows = ref 0 in
  Strip_db.register_function db "f" (fun ctx ->
      total_rows :=
        Query.row_count
          (Transaction.query ctx.Rule_manager.txn "select sym from batch"));
  let q_upd =
    {|select new.symbol as sym from new, old
      where new.execute_order = old.execute_order bind as batch|}
  in
  let q_ins = {|select inserted.symbol as sym from inserted bind as batch|} in
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r_upd on stocks when updated price if %s then execute f \
        unique after 1.0 seconds"
       q_upd);
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r_ins on stocks when inserted if %s then execute f \
        unique after 1.0 seconds"
       q_ins);
  Strip_db.submit_update db ~at:0.0 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'"));
  Strip_db.submit_update db ~at:0.2 (fun txn ->
      ignore (Transaction.exec txn "insert into stocks values ('S9', 9.0)"));
  Strip_db.run db;
  Alcotest.(check int) "one merged transaction" 1
    (Rule_manager.n_tasks_created (Strip_db.rules db));
  Alcotest.(check int) "rows from both rules" 2 !total_rows

let test_mismatched_layout_rejected () =
  let db = setup () in
  Strip_db.register_function db "f" (fun _ -> ());
  Strip_db.create_rule db
    {|create rule r1 on stocks when updated price
      if select new.symbol as sym from new bind as batch
      then execute f unique|};
  match
    Strip_db.create_rule db
      {|create rule r2 on stocks when inserted
        if select inserted.symbol as sym, inserted.price as p from inserted
           bind as batch
        then execute f unique|}
  with
  | exception Rule_manager.Rule_error _ -> ()
  | _ -> Alcotest.fail "incompatible bound layouts for one function accepted"

let test_registry_cleared_after_run () =
  let db = setup () in
  Strip_db.register_function db "f" (fun _ -> ());
  Strip_db.create_rule db
    {|create rule r on stocks when updated price
      if select new.symbol as sym from new bind as batch
      then execute f unique after 1.0 seconds|};
  ignore (Strip_db.exec db "update stocks set price = 31.0 where symbol = 'S1'");
  let reg = Rule_manager.registry (Strip_db.rules db) in
  Alcotest.(check int) "queued" 1 (Unique.queued reg);
  Strip_db.run db;
  Alcotest.(check bool) "entry dropped when the task starts" true
    (Unique.find reg ~func:"f" ~key:[] = None)

(* Appendix A, general case: unique columns drawn from two different bound
   tables.  The key space is the cartesian product of the per-table
   distinct sub-keys; tables containing unique columns are partitioned,
   tables without are passed whole to every partition. *)
let test_appendix_a_multi_table_partitioning () =
  let db = Strip_db.create () in
  Strip_db.exec_script db
    {|create table events (kind string, region string, amount float);
      create table audit_kinds (kind string);
      insert into audit_kinds values ('buy'), ('sell')|};
  let seen = ref [] in
  Strip_db.register_function db "f" (fun ctx ->
      let q name = Transaction.query ctx.Rule_manager.txn ("select * from " ^ name) in
      let kinds =
        List.map (fun r -> Value.to_string r.(0)) (Query.rows (q "by_kind"))
      in
      let regions =
        List.map (fun r -> Value.to_string r.(0)) (Query.rows (q "by_region"))
      in
      let whole = Query.row_count (q "all_kinds") in
      seen :=
        (List.sort_uniq compare kinds, List.sort_uniq compare regions, whole)
        :: !seen);
  Strip_db.create_rule db
    {|create rule r on events when inserted
      if
        select inserted.kind as kind from inserted bind as by_kind,
        select inserted.region as region from inserted bind as by_region,
        select kind from audit_kinds bind as all_kinds
      then execute f unique on kind, region after 1.0 seconds|};
  (* one transaction inserting 2 kinds x 2 regions (3 combos present) *)
  Strip_db.submit_update db ~at:0.0 (fun txn ->
      ignore
        (Transaction.exec txn
           "insert into events values ('buy','us',1.0), ('buy','eu',2.0), \
            ('sell','us',3.0)"));
  Strip_db.run db;
  (* distinct kinds {buy, sell} x distinct regions {us, eu} = 4 tasks, even
     though only 3 combinations co-occur in a row (Appendix A partitions
     each table independently) *)
  Alcotest.(check int) "cartesian key space" 4
    (Rule_manager.n_tasks_created (Strip_db.rules db));
  List.iter
    (fun (kinds, regions, whole) ->
      Alcotest.(check int) "single kind per task" 1 (List.length kinds);
      Alcotest.(check int) "single region per task" 1 (List.length regions);
      Alcotest.(check int) "unpartitioned table passed whole" 2 whole)
    !seen

let test_unique_registry_api () =
  let reg = Unique.create () in
  let t =
    Task.create ~klass:Task.Recompute ~func_name:"f" ~unique_key:[ Value.Str "k" ]
      ~release_time:0.0 ~created_at:0.0 (fun _ -> ())
  in
  Unique.register reg ~func:"f" ~key:[ Value.Str "k" ] t;
  Alcotest.(check bool) "found" true
    (Unique.find reg ~func:"f" ~key:[ Value.Str "k" ] <> None);
  Alcotest.(check bool) "other key absent" true
    (Unique.find reg ~func:"f" ~key:[ Value.Str "z" ] = None);
  Alcotest.(check bool) "other function absent" true
    (Unique.find reg ~func:"g" ~key:[ Value.Str "k" ] = None);
  Task.run t;
  Alcotest.(check bool) "started tasks invisible" true
    (Unique.find reg ~func:"f" ~key:[ Value.Str "k" ] = None);
  Alcotest.(check int) "lazy removal" 0 (Unique.queued reg)

(* Regression: [queued] used to count raw hash-table entries, so a task
   that had started (or been cancelled) but not yet been purged by a
   [find] on its exact key still counted as queued — overload control saw
   a phantom backlog.  The count must reflect only genuinely queued tasks,
   with no intervening [find] to launder the registry. *)
let test_queued_excludes_started_without_find () =
  let reg = Unique.create () in
  let mk key =
    Task.create ~klass:Task.Recompute ~func_name:"f"
      ~unique_key:[ Value.Str key ] ~release_time:0.0 ~created_at:0.0
      (fun _ -> ())
  in
  let a = mk "a" and b = mk "b" and c = mk "c" in
  Unique.register reg ~func:"f" ~key:[ Value.Str "a" ] a;
  Unique.register reg ~func:"f" ~key:[ Value.Str "b" ] b;
  Unique.register reg ~func:"f" ~key:[ Value.Str "c" ] c;
  Alcotest.(check int) "all queued" 3 (Unique.queued reg);
  Task.run a;
  Alcotest.(check int) "started task not queued" 2 (Unique.queued reg);
  Task.cancel b;
  Alcotest.(check int) "cancelled task not queued" 1 (Unique.queued reg)

let suite =
  [
    ( "unique",
      [
        Alcotest.test_case "coarse unique merges (Figure 5b)" `Quick
          test_coarse_unique_merges;
        Alcotest.test_case "unique on comp partitions (Figure 5c)" `Quick
          test_unique_on_comp_partitions;
        Alcotest.test_case "non-unique keeps firings apart (Figure 5a)" `Quick
          test_non_unique_figure5a;
        Alcotest.test_case "merging stops once started" `Quick
          test_merge_stops_once_started;
        Alcotest.test_case "two rules, one function: batches combine" `Quick
          test_two_rules_one_function_merge;
        Alcotest.test_case "mismatched bound layouts rejected" `Quick
          test_mismatched_layout_rejected;
        Alcotest.test_case "registry entry dropped at start" `Quick
          test_registry_cleared_after_run;
        Alcotest.test_case "Appendix A: multi-table key partitioning" `Quick
          test_appendix_a_multi_table_partitioning;
        Alcotest.test_case "registry api" `Quick test_unique_registry_api;
        Alcotest.test_case "queued count ignores started tasks" `Quick
          test_queued_excludes_started_without_find;
      ] );
  ]
