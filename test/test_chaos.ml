(* Chaos explorer: seeded schedule generation, JSON round-trips (via the
   observability parser), the invariant checker, and delta-debugging a
   planted violation down to a 1-minimal replayable reproducer. *)

open Strip_pta
open Strip_chaos

(* ------------------------------------------------------------------ *)
(* Json.parse: the read side of the observability JSON dialect *)

let test_json_parse () =
  let open Strip_obs in
  Alcotest.(check bool) "integer" true (Json.parse "42" = Json.Int 42);
  Alcotest.(check bool) "negative integer" true
    (Json.parse "-7" = Json.Int (-7));
  Alcotest.(check bool) "exponent parses as float" true
    (Json.parse "-3.5e2" = Json.Float (-350.0));
  Alcotest.(check bool) "string escapes decode" true
    (Json.parse "\"a\\nb\\\"c\"" = Json.Str "a\nb\"c");
  Alcotest.(check bool) "null, bools, nesting" true
    (Json.parse "{\"a\": [1, 2.5, null, true], \"b\": {}}"
    = Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null; Json.Bool true ]);
          ("b", Json.Obj []);
        ]);
  let j = Json.parse "{\"n\": 3, \"x\": 1.5}" in
  Alcotest.(check (option int)) "member + to_int" (Some 3)
    (Option.bind (Json.member "n" j) Json.to_int);
  Alcotest.(check (option (float 1e-9))) "ints widen to float" (Some 3.0)
    (Option.bind (Json.member "n" j) Json.to_float);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (Json.member "z" j) Json.to_int);
  let rejects s =
    match Json.parse s with exception Json.Parse_error _ -> true | _ -> false
  in
  Alcotest.(check bool) "truncated object rejected" true (rejects "{\"a\": 1");
  Alcotest.(check bool) "trailing garbage rejected" true (rejects "1 2");
  Alcotest.(check bool) "bare word rejected" true (rejects "chaos");
  (* everything the writer emits, the reader accepts *)
  let doc =
    Json.Obj
      [
        ("s", Json.Str "he said \"no\"\n");
        ("f", Json.Float 0.125);
        ("l", Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Null) ] ]);
      ]
  in
  Alcotest.(check bool) "writer output round-trips" true
    (Json.parse (Json.to_string doc) = doc)

(* ------------------------------------------------------------------ *)
(* Schedule: pure generation and exact serialized round-trips *)

let test_generate_deterministic () =
  let a = Schedule.generate ~seed:11 () in
  Alcotest.(check bool) "pure in the seed" true
    (a = Schedule.generate ~seed:11 ());
  let n = List.length a.Schedule.events in
  Alcotest.(check bool) "2-5 events" true (n >= 2 && n <= 5);
  let times = List.map Experiment.chaos_event_time a.Schedule.events in
  Alcotest.(check bool) "sorted by fire time" true
    (times = List.sort Float.compare times);
  let d =
    Strip_market.Feed.default_config.Strip_market.Feed.duration
    *. a.Schedule.scale
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "inside the middle 80% of the feed" true
        (t >= 0.1 *. d && t <= 0.9 *. d))
    times;
  Alcotest.(check bool) "a different seed draws differently" true
    (Schedule.generate ~seed:12 () <> a)

let test_schedule_roundtrip () =
  for seed = 0 to 9 do
    let s = Schedule.generate ~seed () in
    let written = Schedule.to_string s in
    let s' = Schedule.of_string written in
    (* the serialized form is a fixed point: a reproducer written to
       disk re-reads and re-writes byte-identically *)
    Alcotest.(check string)
      (Printf.sprintf "seed %d serialization is stable" seed)
      written (Schedule.to_string s');
    Alcotest.(check int)
      (Printf.sprintf "seed %d keeps its events" seed)
      (List.length s.Schedule.events)
      (List.length s'.Schedule.events);
    Alcotest.(check string)
      (Printf.sprintf "seed %d describes identically" seed)
      (Schedule.describe s) (Schedule.describe s')
  done;
  let rejects s =
    match Schedule.of_string s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing events rejected" true
    (rejects "{\"seed\": 1, \"scale\": 0.05}");
  Alcotest.(check bool) "unknown event kind rejected" true
    (rejects
       "{\"seed\": 1, \"scale\": 0.05, \"events\": [{\"kind\": \"meteor\", \
        \"at\": 1.0}]}")

let test_schedule_window_boundary_roundtrip () =
  (* Regression: fault windows are half-open [at, until).  A reproducer
     that round-trips through JSON must keep its edges bit-exact, and a
     link armed from the round-tripped schedule must still deliver the
     send stamped exactly at the healing edge. *)
  let open Strip_repl in
  let s =
    {
      Schedule.seed = 1;
      scale = 0.05;
      events =
        [
          Experiment.Partition_at { at = 1.0; heal_after_s = 1.0 };
          Experiment.Drop_burst { at = 3.0; until_s = 4.0; rate = 1.0 };
        ];
    }
  in
  let s' = Schedule.of_string (Schedule.to_string s) in
  Alcotest.(check bool) "edges survive the round-trip bit-exact" true
    (s'.Schedule.events = s.Schedule.events);
  let arm events =
    let l = Link.create { Link.default_config with drop_rate = 0.0 } in
    List.iter
      (function
        | Experiment.Partition_at { at; heal_after_s } ->
          Link.add_partition_window l ~from_s:at ~until_s:(at +. heal_after_s)
        | Experiment.Drop_burst { at; until_s; rate } ->
          Link.add_drop_burst l ~from_s:at ~until_s ~rate
        | _ -> ())
      events;
    (* one send on each edge of each window *)
    let fates =
      List.map
        (fun now ->
          let d0 = Link.n_dropped l
          and p0 = Link.n_partition_drops l
          and f0 = Link.in_flight l in
          Link.send l ~now (Link.Segment { from_lsn = 0; bytes = "x" });
          if Link.n_partition_drops l > p0 then "cut"
          else if Link.n_dropped l > d0 then "dropped"
          else if Link.in_flight l > f0 then "delivered"
          else "lost")
        [ 1.0; 2.0; 3.0; 4.0 ]
    in
    fates
  in
  let expected = [ "cut"; "delivered"; "dropped"; "delivered" ] in
  Alcotest.(check (list string)) "boundary fates as armed" expected
    (arm s.Schedule.events);
  Alcotest.(check (list string)) "identical after the JSON round-trip"
    expected
    (arm s'.Schedule.events)

(* ------------------------------------------------------------------ *)
(* Explorer: benign runs pass, runs are deterministic, planted
   violations shrink to 1-minimal replayable reproducers *)

let test_benign_schedule_passes () =
  let s =
    {
      Schedule.seed = 3;
      scale = 0.02;
      events = [ Experiment.Checkpoint_at 12.0 ];
    }
  in
  let o = Explore.run_schedule s in
  Alcotest.(check int) "no invariant violated" 0
    (List.length o.Explore.violations);
  Alcotest.(check int) "no crashes" 0 o.Explore.n_crashes;
  Alcotest.(check int) "no partitions" 0 o.Explore.n_partitions;
  Alcotest.(check int) "the founding term survives" 1 o.Explore.final_epoch

let test_run_schedule_deterministic () =
  let s = Schedule.generate ~scale:0.02 ~seed:9 () in
  let a = Explore.run_schedule s in
  let b = Explore.run_schedule s in
  Alcotest.(check bool) "identical outcome records" true (a = b);
  Alcotest.(check bool) "the schedule exercised something" true
    (a.Explore.n_crashes + a.Explore.n_partitions > 0
    || List.length s.Schedule.events > 0)

let planted_extra (m : Experiment.metrics) =
  match m.Experiment.recovery with
  | Some r when r.Experiment.n_crashes > 0 ->
    [ { Explore.invariant = "no_crashes_allowed"; detail = "planted" } ]
  | _ -> []

let test_shrink_to_minimal_reproducer () =
  (* plant an unsatisfiable invariant — "no crash may ever happen" —
     in a 4-event schedule where exactly one event is a crash: the
     shrinker must isolate that event *)
  let s =
    {
      Schedule.seed = 0;
      scale = 0.02;
      events =
        [
          Experiment.Checkpoint_at 6.0;
          Experiment.Drop_burst { at = 8.0; until_s = 9.0; rate = 0.5 };
          Experiment.Crash_at 12.0;
          Experiment.Checkpoint_at 20.0;
        ];
    }
  in
  let violated o =
    List.exists
      (fun v -> v.Explore.invariant = "no_crashes_allowed")
      o.Explore.violations
  in
  let o = Explore.shrink ~extra:planted_extra s in
  Alcotest.(check int) "shrunk to one event" 1
    (List.length o.Explore.schedule.Schedule.events);
  (match o.Explore.schedule.Schedule.events with
  | [ Experiment.Crash_at at ] ->
    Alcotest.(check (float 1e-9)) "the crash is the culprit" 12.0 at
  | _ -> Alcotest.fail "expected the crash to survive shrinking");
  Alcotest.(check bool) "the violation survives the shrink" true (violated o);
  (* the written reproducer replays the identical failure *)
  let replayed =
    Explore.run_schedule ~extra:planted_extra
      (Schedule.of_string (Schedule.to_string o.Explore.schedule))
  in
  Alcotest.(check bool) "replay reproduces the violation" true
    (violated replayed);
  (* a benign schedule passes through the shrinker unshrunk *)
  let benign =
    { s with Schedule.events = [ Experiment.Checkpoint_at 6.0 ] }
  in
  let ob = Explore.shrink ~extra:planted_extra benign in
  Alcotest.(check int) "nothing to shrink without a failure" 1
    (List.length ob.Explore.schedule.Schedule.events);
  Alcotest.(check int) "benign stays clean" 0
    (List.length ob.Explore.violations)

let test_explore_smoke () =
  let outcomes = Explore.explore ~scale:0.02 ~seed:5 ~schedules:2 () in
  Alcotest.(check int) "every schedule ran" 2 (List.length outcomes);
  Alcotest.(check int) "no invariant violated" 0
    (Explore.total_violations outcomes);
  let open Strip_obs in
  let doc = Explore.summary_json ~seed:5 ~scale:0.02 outcomes in
  Alcotest.(check (option int)) "summary carries the sweep size" (Some 2)
    (Option.bind (Json.member "schedules" doc) Json.to_int);
  Alcotest.(check (option int)) "summary carries the gate" (Some 0)
    (Option.bind (Json.member "violations" doc) Json.to_int);
  (* the summary is parseable by our own reader; integral floats re-read
     as ints, so the stable property is the serialized fixed point *)
  let written = Json.to_string doc in
  Alcotest.(check string) "summary JSON re-serializes identically" written
    (Json.to_string (Json.parse written))

(* ------------------------------------------------------------------ *)
(* Causal tracing across a partition-heal failover: the merged cluster
   trace keeps applies parent-linked and epoch-stamped across terms *)

let test_failover_spans_cross_epochs () =
  Strip_txn.Task.reset_ids ();
  let open Strip_obs in
  let tr = Trace.create () in
  let base =
    Experiment.default_config
      (Experiment.Comp_view Comp_rules.Unique_on_comp)
      ~delay:0.5
  in
  let cfg = Experiment.quick base 0.02 in
  let cfg =
    {
      cfg with
      Experiment.verify = true;
      trace = Some tr;
      recovery = Some Experiment.default_recovery;
      repl = Some { Experiment.default_repl with Experiment.replicas = 2 };
      chaos = [ Experiment.Partition_at { at = 10.0; heal_after_s = 2.0 } ];
    }
  in
  let m = Experiment.run cfg in
  (match m.Experiment.repl with
  | None -> Alcotest.fail "expected replication metrics"
  | Some r ->
    Alcotest.(check bool) "the partition elected a new primary" true
      (r.Experiment.n_failovers >= 1);
    Alcotest.(check bool) "a later epoch opened" true (r.Experiment.epoch >= 2));
  Alcotest.(check (list string)) "primary + both replica buffers returned"
    [ "primary"; "replica-0"; "replica-1" ]
    (List.map fst m.Experiment.cluster_traces);
  let all =
    List.concat_map (fun (_, t) -> Trace.events t) m.Experiment.cluster_traces
  in
  let named n = List.filter (fun (e : Trace.event) -> e.Trace.name = n) all in
  Alcotest.(check bool) "promotion traced, epoch-stamped" true
    (List.exists
       (fun (e : Trace.event) -> List.mem_assoc "epoch" e.Trace.args)
       (named "promote" @ named "promote_isolated"));
  Alcotest.(check bool) "heal traced with old and new terms" true
    (List.exists
       (fun (e : Trace.event) ->
         List.mem_assoc "old_epoch" e.Trace.args
         && List.mem_assoc "epoch" e.Trace.args)
       (named "heal"));
  let apply_epoch (e : Trace.event) =
    match List.assoc_opt "epoch" e.Trace.args with
    | Some (Trace.Int ep) -> Some ep
    | _ -> None
  in
  let applies = named "apply" in
  Alcotest.(check bool) "applies span more than one epoch" true
    (List.length
       (List.sort_uniq compare (List.filter_map apply_epoch applies))
    >= 2);
  (* parent-linked applies: the parent span id must exist as a span
     emitted somewhere else in the merged trace (the write on the
     primary of that term) *)
  let span_ids =
    List.filter_map
      (fun (e : Trace.event) ->
        match List.assoc_opt "span" e.Trace.args with
        | Some (Trace.Int s) -> Some s
        | _ -> None)
      all
  in
  let resolved =
    List.exists
      (fun (e : Trace.event) ->
        match List.assoc_opt "parent" e.Trace.args with
        | Some (Trace.Int p) -> List.mem p span_ids
        | _ -> false)
      applies
  in
  Alcotest.(check bool) "an apply parent-links to its write's span" true
    resolved

let suite =
  [
    ( "chaos/json",
      [ Alcotest.test_case "parse the emitted dialect" `Quick test_json_parse ]
    );
    ( "chaos/schedule",
      [
        Alcotest.test_case "generation is pure in the seed" `Quick
          test_generate_deterministic;
        Alcotest.test_case "serialized schedules round-trip" `Quick
          test_schedule_roundtrip;
        Alcotest.test_case "window boundaries half-open across round-trip"
          `Quick test_schedule_window_boundary_roundtrip;
      ] );
    ( "chaos/explore",
      [
        Alcotest.test_case "benign schedules pass every invariant" `Slow
          test_benign_schedule_passes;
        Alcotest.test_case "runs are deterministic" `Slow
          test_run_schedule_deterministic;
        Alcotest.test_case "planted violations shrink to 1-minimal" `Slow
          test_shrink_to_minimal_reproducer;
        Alcotest.test_case "a small sweep runs clean" `Slow test_explore_smoke;
        Alcotest.test_case "failover spans stay linked across epochs" `Slow
          test_failover_spans_cross_epochs;
      ] );
  ]
