open Strip_txn

let mk_task ?(klass = Task.Recompute) ?deadline ?(value = 1.0) name =
  Task.create ~klass ~func_name:name ?deadline ~value ~release_time:0.0
    ~created_at:0.0 (fun _ -> ())

let drain q =
  let rec loop acc =
    match Queues.dequeue q with
    | Some t -> loop (t.Task.func_name :: acc)
    | None -> List.rev acc
  in
  loop []

let test_fifo () =
  let q = Queues.create () in
  List.iter (fun n -> Queues.enqueue q (mk_task n)) [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "fifo order" [ "a"; "b"; "c" ] (drain q)

let test_priority_classes () =
  let q = Queues.create () in
  Queues.enqueue q (mk_task ~klass:Task.Recompute "rc1");
  Queues.enqueue q (mk_task ~klass:Task.Background "bg");
  Queues.enqueue q (mk_task ~klass:Task.Update "upd");
  Queues.enqueue q (mk_task ~klass:Task.Recompute "rc2");
  Alcotest.(check (list string))
    "updates first, background last" [ "upd"; "rc1"; "rc2"; "bg" ] (drain q)

let test_edf () =
  let q = Queues.create ~policy:Queues.Edf () in
  Queues.enqueue q (mk_task ~deadline:5.0 "late");
  Queues.enqueue q (mk_task ~deadline:1.0 "soon");
  Queues.enqueue q (mk_task "never");
  (* no deadline sorts last *)
  Alcotest.(check (list string)) "deadline order" [ "soon"; "late"; "never" ]
    (drain q)

let test_vdf () =
  let q = Queues.create ~policy:Queues.Vdf () in
  Queues.enqueue q (mk_task ~value:1.0 "cheap");
  Queues.enqueue q (mk_task ~value:9.0 "valuable");
  Queues.enqueue q (mk_task ~value:3.0 "mid");
  Alcotest.(check (list string)) "value order" [ "valuable"; "mid"; "cheap" ]
    (drain q)

let test_cancelled_skipped () =
  let q = Queues.create () in
  let a = mk_task "a" and b = mk_task "b" in
  Queues.enqueue q a;
  Queues.enqueue q b;
  Task.cancel a;
  Alcotest.(check (list string)) "cancelled dropped" [ "b" ] (drain q);
  Alcotest.(check bool) "empty" true (Queues.is_empty q)

(* Regression: [length]/[is_empty] used to count lazily-cancelled entries
   still sitting in the heap, disagreeing with what [dequeue] would serve. *)
let test_cancelled_not_counted () =
  let q = Queues.create () in
  let a = mk_task "a" and b = mk_task "b" and c = mk_task "c" in
  List.iter (Queues.enqueue q) [ a; b; c ];
  Task.cancel b;
  Alcotest.(check int) "length skips cancelled" 2 (Queues.length q);
  Alcotest.(check bool) "not empty yet" false (Queues.is_empty q);
  Task.cancel a;
  Task.cancel c;
  Alcotest.(check int) "all cancelled -> 0" 0 (Queues.length q);
  Alcotest.(check bool) "all cancelled -> empty" true (Queues.is_empty q);
  Alcotest.(check (option string)) "dequeue agrees" None
    (Option.map (fun t -> t.Task.func_name) (Queues.dequeue q))

let test_peek_does_not_remove () =
  let q = Queues.create () in
  Queues.enqueue q (mk_task "a");
  Alcotest.(check (option string)) "peek" (Some "a")
    (Option.map (fun t -> t.Task.func_name) (Queues.peek q));
  Alcotest.(check int) "still there" 1 (Queues.length q)

(* Event queue *)

let test_event_queue_order () =
  let q = Strip_sim.Event_queue.create () in
  Strip_sim.Event_queue.add q ~time:3.0 "c";
  Strip_sim.Event_queue.add q ~time:1.0 "a";
  Strip_sim.Event_queue.add q ~time:2.0 "b1";
  Strip_sim.Event_queue.add q ~time:2.0 "b2";
  let rec drain acc =
    match Strip_sim.Event_queue.pop q with
    | Some (_, x) -> drain (x :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list string))
    "time order, FIFO ties" [ "a"; "b1"; "b2"; "c" ] (drain [])

let prop_event_queue_sorts =
  QCheck2.Test.make ~name:"event queue = stable sort by time" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 20))
    (fun times ->
      let q = Strip_sim.Event_queue.create () in
      List.iteri
        (fun i t -> Strip_sim.Event_queue.add q ~time:(float_of_int t) (t, i))
        times;
      let rec drain acc =
        match Strip_sim.Event_queue.pop q with
        | Some (_, x) -> drain (x :: acc)
        | None -> List.rev acc
      in
      let got = drain [] in
      let expected =
        List.stable_sort
          (fun (t1, i1) (t2, i2) ->
            if t1 <> t2 then compare t1 t2 else compare i1 i2)
          (List.mapi (fun i t -> (t, i)) times)
      in
      got = expected)

(* Task lifecycle *)

let test_task_lifecycle () =
  let ran = ref false in
  let t =
    Task.create ~klass:Task.Recompute ~func_name:"f" ~release_time:0.0
      ~created_at:0.0 (fun _ -> ran := true)
  in
  Alcotest.(check bool) "not started" false (Task.started t);
  Task.run t;
  Alcotest.(check bool) "ran" true !ran;
  Alcotest.(check bool) "done" true (t.Task.state = Task.Done);
  match Task.run t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double run accepted"

let test_task_run_retires_bound_tables () =
  let open Strip_relational in
  let tmp =
    Temp_table.create_materialized ~name:"b"
      ~schema:(Schema.of_list [ ("x", Value.TInt) ])
  in
  let t =
    Task.create ~klass:Task.Recompute ~func_name:"f" ~bound:[ ("b", tmp) ]
      ~release_time:0.0 ~created_at:0.0 (fun task ->
        Alcotest.(check bool) "bound visible during run" true
          (List.mem_assoc "b" task.Task.bound))
  in
  Task.run t;
  Alcotest.(check bool) "retired after run" true (Temp_table.retired tmp)

let suite =
  [
    ( "queues",
      [
        Alcotest.test_case "fifo" `Quick test_fifo;
        Alcotest.test_case "priority classes" `Quick test_priority_classes;
        Alcotest.test_case "earliest deadline first" `Quick test_edf;
        Alcotest.test_case "value density first" `Quick test_vdf;
        Alcotest.test_case "cancelled tasks skipped" `Quick test_cancelled_skipped;
        Alcotest.test_case "cancelled tasks not counted" `Quick
          test_cancelled_not_counted;
        Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
        Alcotest.test_case "event queue ordering" `Quick test_event_queue_order;
        QCheck_alcotest.to_alcotest prop_event_queue_sorts;
        Alcotest.test_case "task lifecycle" `Quick test_task_lifecycle;
        Alcotest.test_case "task run retires bound tables" `Quick
          test_task_run_retires_bound_tables;
      ] );
  ]
