open Strip_relational

let mk () =
  Table.create ~name:"t"
    ~schema:(Schema.of_list [ ("k", Value.TStr); ("v", Value.TInt) ])

let row k v = [| Value.Str k; Value.Int v |]

let contents tb =
  List.map
    (fun r -> (Value.to_string r.(0), Value.to_int r.(1)))
    (Table.to_rows tb)

let test_insert_iterate () =
  let tb = mk () in
  ignore (Table.insert tb (row "a" 1));
  ignore (Table.insert tb (row "b" 2));
  Alcotest.(check int) "cardinal" 2 (Table.cardinal tb);
  Alcotest.(check (list (pair string int))) "order" [ ("a", 1); ("b", 2) ]
    (contents tb)

let test_insert_validates () =
  let tb = mk () in
  match Table.insert tb [| Value.Int 1; Value.Int 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "schema violation accepted"

let test_update_versioning () =
  let tb = mk () in
  let r = Table.insert tb (row "a" 1) in
  Record.reset_reclaimed ();
  let r' = Table.update tb r (row "a" 2) in
  Alcotest.(check bool) "old retired" false r.Record.live;
  Alcotest.(check bool) "new live" true r'.Record.live;
  Alcotest.(check bool) "fresh rid" true (r'.Record.rid <> r.Record.rid);
  Alcotest.(check int) "old value immutable" 1 (Value.to_int (Record.value r 1));
  Alcotest.(check int) "unpinned old reclaimed immediately" 1
    (Record.reclaimed_count ());
  Alcotest.(check (list (pair string int))) "table sees new" [ ("a", 2) ]
    (contents tb)

let test_update_keeps_position () =
  let tb = mk () in
  ignore (Table.insert tb (row "a" 1));
  let b = Table.insert tb (row "b" 2) in
  ignore (Table.insert tb (row "c" 3));
  ignore (Table.update tb b (row "b" 20));
  Alcotest.(check (list (pair string int)))
    "in place" [ ("a", 1); ("b", 20); ("c", 3) ] (contents tb)

let test_pinned_old_version_survives () =
  let tb = mk () in
  let r = Table.insert tb (row "a" 1) in
  Record.pin r;
  Record.reset_reclaimed ();
  ignore (Table.update tb r (row "a" 2));
  Alcotest.(check int) "not reclaimed while pinned" 0 (Record.reclaimed_count ());
  Alcotest.(check int) "pre-image readable" 1 (Value.to_int (Record.value r 1));
  Record.unpin r;
  Alcotest.(check int) "reclaimed on last unpin" 1 (Record.reclaimed_count ())

let test_update_nonresident_rejected () =
  let tb = mk () in
  let r = Table.insert tb (row "a" 1) in
  Table.delete tb r;
  match Table.update tb r (row "a" 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "update of deleted record accepted"

let test_delete () =
  let tb = mk () in
  let r = Table.insert tb (row "a" 1) in
  ignore (Table.insert tb (row "b" 2));
  Table.delete tb r;
  Alcotest.(check (list (pair string int))) "gone" [ ("b", 2) ] (contents tb);
  Alcotest.(check bool) "retired" false r.Record.live

let test_index_maintenance () =
  let tb = mk () in
  let idx = Table.create_index tb ~name:"by_k" ~kind:Index.Hash ~cols:[ "k" ] in
  let r = Table.insert tb (row "a" 1) in
  ignore (Table.insert tb (row "a" 2));
  Alcotest.(check int) "two under a" 2
    (List.length (Index.lookup idx [ Value.Str "a" ]));
  let r' = Table.update tb r (row "z" 1) in
  Alcotest.(check int) "moved out of a" 1
    (List.length (Index.lookup idx [ Value.Str "a" ]));
  Alcotest.(check int) "into z" 1 (List.length (Index.lookup idx [ Value.Str "z" ]));
  Table.delete tb r';
  Alcotest.(check int) "delete removes posting" 0
    (List.length (Index.lookup idx [ Value.Str "z" ]))

let test_index_backfill_and_lookup_by_cols () =
  let tb = mk () in
  ignore (Table.insert tb (row "a" 1));
  let idx = Table.create_index tb ~name:"by_k" ~kind:Index.Hash ~cols:[ "k" ] in
  Alcotest.(check int) "existing rows indexed" 1
    (List.length (Index.lookup idx [ Value.Str "a" ]));
  Alcotest.(check bool) "index_on finds it" true
    (Table.index_on tb [ "k" ] <> None);
  Alcotest.(check bool) "wrong cols" true (Table.index_on tb [ "v" ] = None);
  match Table.create_index tb ~name:"by_k" ~kind:Index.Hash ~cols:[ "v" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate index name accepted"

let test_full_cursor () =
  let tb = mk () in
  ignore (Table.insert tb (row "a" 1));
  ignore (Table.insert tb (row "b" 2));
  let c = Table.open_cursor tb in
  let fetched = ref [] in
  let rec loop () =
    match Table.fetch c with
    | Some r ->
      fetched := Value.to_string (Record.value r 0) :: !fetched;
      loop ()
    | None -> ()
  in
  loop ();
  Table.close_cursor c;
  Alcotest.(check (list string)) "scan order" [ "a"; "b" ] (List.rev !fetched);
  match Table.fetch c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fetch on closed cursor accepted"

let test_cursor_update_delete () =
  let tb = mk () in
  ignore (Table.insert tb (row "a" 1));
  ignore (Table.insert tb (row "b" 2));
  ignore (Table.insert tb (row "c" 3));
  let c = Table.open_cursor tb in
  (* bump every row through the cursor, delete "b" *)
  let rec loop () =
    match Table.fetch c with
    | None -> ()
    | Some r ->
      if Value.to_string (Record.value r 0) = "b" then Table.cursor_delete c
      else
        ignore
          (Table.cursor_update c
             [| Record.value r 0; Value.add (Record.value r 1) (Value.Int 10) |]);
      loop ()
  in
  loop ();
  Table.close_cursor c;
  Alcotest.(check (list (pair string int)))
    "updated through cursor" [ ("a", 11); ("c", 13) ] (contents tb)

let test_index_cursor () =
  let tb = mk () in
  let idx = Table.create_index tb ~name:"by_k" ~kind:Index.Hash ~cols:[ "k" ] in
  ignore (Table.insert tb (row "a" 1));
  ignore (Table.insert tb (row "b" 2));
  ignore (Table.insert tb (row "a" 3));
  let c = Table.open_index_cursor tb idx [ Value.Str "a" ] in
  let n = ref 0 in
  let rec loop () =
    match Table.fetch c with
    | Some _ ->
      incr n;
      loop ()
    | None -> ()
  in
  loop ();
  Table.close_cursor c;
  Alcotest.(check int) "matches" 2 !n

let test_cursor_update_without_fetch () =
  let tb = mk () in
  ignore (Table.insert tb (row "a" 1));
  let c = Table.open_cursor tb in
  match Table.cursor_update c (row "a" 9) with
  | exception Invalid_argument _ -> Table.close_cursor c
  | _ -> Alcotest.fail "update without current record accepted"

let test_clear () =
  let tb = mk () in
  ignore (Table.insert tb (row "a" 1));
  ignore (Table.insert tb (row "b" 2));
  Table.clear tb;
  Alcotest.(check int) "empty" 0 (Table.cardinal tb);
  ignore (Table.insert tb (row "c" 3));
  Alcotest.(check (list (pair string int))) "usable after clear" [ ("c", 3) ]
    (contents tb)

let suite =
  [
    ( "table",
      [
        Alcotest.test_case "insert and iterate" `Quick test_insert_iterate;
        Alcotest.test_case "insert validates schema" `Quick test_insert_validates;
        Alcotest.test_case "update creates a version" `Quick test_update_versioning;
        Alcotest.test_case "update keeps list position" `Quick test_update_keeps_position;
        Alcotest.test_case "pinned pre-image survives" `Quick test_pinned_old_version_survives;
        Alcotest.test_case "update of retired record rejected" `Quick test_update_nonresident_rejected;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "index maintenance on DML" `Quick test_index_maintenance;
        Alcotest.test_case "index backfill / lookup" `Quick test_index_backfill_and_lookup_by_cols;
        Alcotest.test_case "full-scan cursor" `Quick test_full_cursor;
        Alcotest.test_case "cursor update/delete" `Quick test_cursor_update_delete;
        Alcotest.test_case "index cursor" `Quick test_index_cursor;
        Alcotest.test_case "cursor update needs a fetch" `Quick test_cursor_update_without_fetch;
        Alcotest.test_case "clear" `Quick test_clear;
      ] );
  ]
