open Strip_relational
open Strip_txn
open Strip_core

(* ------------------------------------------------------------------ *)
(* Parser: the paper's figures, verbatim.                               *)

let fig3 =
  {|create rule do_comps1 on stocks
    when updated price
    if
      select comp, comps_list.symbol as symbol, weight,
             old.price as old_price, new.price as new_price
      from comps_list, new, old
      where comps_list.symbol = new.symbol
        and new.execute_order = old.execute_order
      bind as matches
    then
      execute compute_comps1|}

let fig6 =
  {|create rule do_comps2 on stocks
    when updated price
    if
      select comp, comps_list.symbol as symbol, weight,
             old.price as old_price, new.price as new_price
      from comps_list, new, old
      where comps_list.symbol = new.symbol and new.execute_order = old.execute_order
      bind as matches
    then
      execute compute_comps2
      unique
      after 1.0 seconds
    end rule|}

let fig7_unique_on =
  {|create rule do_comps3 on stocks
    when updated price
    if
      select comp from comps_list, new where comps_list.symbol = new.symbol
      bind as matches
    then
      execute compute_comps3
      unique on comp
      after 1.0 seconds|}

let test_parse_fig3 () =
  let r = Rule_parser.parse fig3 in
  Alcotest.(check string) "name" "do_comps1" r.Rule_ast.rname;
  Alcotest.(check string) "table" "stocks" r.Rule_ast.rtable;
  (match r.Rule_ast.events with
  | [ Rule_ast.On_update [ "price" ] ] -> ()
  | _ -> Alcotest.fail "events");
  Alcotest.(check int) "one condition query" 1 (List.length r.Rule_ast.condition);
  Alcotest.(check (option string)) "bind as" (Some "matches")
    (List.hd r.Rule_ast.condition).Rule_ast.bind_as;
  Alcotest.(check bool) "not unique" true (r.Rule_ast.uniqueness = Rule_ast.Not_unique);
  Alcotest.(check (float 0.0)) "no delay" 0.0 r.Rule_ast.delay

let test_parse_fig6 () =
  let r = Rule_parser.parse fig6 in
  Alcotest.(check bool) "unique" true (r.Rule_ast.uniqueness = Rule_ast.Unique);
  Alcotest.(check (float 0.0)) "delay" 1.0 r.Rule_ast.delay;
  Alcotest.(check string) "func" "compute_comps2" r.Rule_ast.func

let test_parse_fig7 () =
  let r = Rule_parser.parse fig7_unique_on in
  match r.Rule_ast.uniqueness with
  | Rule_ast.Unique_on [ "comp" ] -> ()
  | _ -> Alcotest.fail "unique on comp expected"

let test_parse_event_lists () =
  let r =
    Rule_parser.parse
      "create rule r on t when inserted deleted updated a, b then execute f"
  in
  match r.Rule_ast.events with
  | [ Rule_ast.On_insert; Rule_ast.On_delete; Rule_ast.On_update [ "a"; "b" ] ] ->
    ()
  | _ -> Alcotest.fail "event list"

let test_parse_evaluate_clause () =
  let r =
    Rule_parser.parse
      {|create rule r on t when inserted
        then
          evaluate select a from t bind as extra,
                   select b from t bind as more
          execute f
          after 500 milliseconds|}
  in
  Alcotest.(check int) "two evaluate queries" 2 (List.length r.Rule_ast.evaluate);
  Alcotest.(check (float 1e-9)) "ms delay" 0.5 r.Rule_ast.delay

let test_parse_errors () =
  List.iter
    (fun s ->
      match Rule_parser.parse s with
      | exception Sql_parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted: %s" s)
    [
      "create rule r on t then execute f";  (* no when *)
      "create rule r on t when frobnicated then execute f";
      "create rule r on t when inserted then";  (* no execute *)
      "create rule r on t when inserted then execute f after -1.0";
    ]

let test_is_rule_ddl () =
  Alcotest.(check bool) "rule" true (Rule_parser.is_rule_ddl "CREATE RULE x ON t ...");
  Alcotest.(check bool) "table" false (Rule_parser.is_rule_ddl "create table t (a int)")

(* ------------------------------------------------------------------ *)
(* Event matching and transition tables.                                *)

let schema = Schema.of_list [ ("k", Value.TStr); ("v", Value.TInt) ]

let test_event_matches () =
  let old_rec = Record.create [| Value.Str "a"; Value.Int 1 |] in
  let new_rec = Record.create [| Value.Str "a"; Value.Int 2 |] in
  let upd = Tlog.Updated { old_rec; new_rec } in
  Alcotest.(check bool) "updated any" true
    (Rule_ast.event_matches ~schema (Rule_ast.On_update []) upd);
  Alcotest.(check bool) "updated v" true
    (Rule_ast.event_matches ~schema (Rule_ast.On_update [ "v" ]) upd);
  Alcotest.(check bool) "updated k (unchanged)" false
    (Rule_ast.event_matches ~schema (Rule_ast.On_update [ "k" ]) upd);
  Alcotest.(check bool) "unknown column" false
    (Rule_ast.event_matches ~schema (Rule_ast.On_update [ "zz" ]) upd);
  Alcotest.(check bool) "insert event vs update change" false
    (Rule_ast.event_matches ~schema Rule_ast.On_insert upd);
  Alcotest.(check bool) "insert" true
    (Rule_ast.event_matches ~schema Rule_ast.On_insert (Tlog.Inserted new_rec))

let test_transition_tables () =
  let log = Tlog.create () in
  let r1 = Record.create [| Value.Str "a"; Value.Int 1 |] in
  let r1' = Record.create [| Value.Str "a"; Value.Int 2 |] in
  let r2 = Record.create [| Value.Str "b"; Value.Int 9 |] in
  Tlog.log_insert log ~table:"t" r2;
  Tlog.log_update log ~table:"t" ~old_rec:r1 ~new_rec:r1';
  Tlog.log_delete log ~table:"t" r2;
  let trans = Transition.build ~schema ~table:"t" (Tlog.entries log) in
  Alcotest.(check int) "inserted rows" 1 (Temp_table.cardinal trans.Transition.inserted);
  Alcotest.(check int) "deleted rows" 1 (Temp_table.cardinal trans.Transition.deleted);
  Alcotest.(check int) "new rows" 1 (Temp_table.cardinal trans.Transition.new_);
  Alcotest.(check int) "old rows" 1 (Temp_table.cardinal trans.Transition.old);
  (* no net effect: the tuple inserted and deleted appears in both *)
  let ins_row = List.hd (Temp_table.to_rows trans.Transition.inserted) in
  let del_row = List.hd (Temp_table.to_rows trans.Transition.deleted) in
  Alcotest.(check string) "audit trail" "b" (Value.to_string del_row.(0));
  Alcotest.(check int) "insert seq" 1 (Value.to_int ins_row.(2));
  Alcotest.(check int) "delete seq" 3 (Value.to_int del_row.(2));
  (* old and new images of an update share execute_order *)
  let old_row = List.hd (Temp_table.to_rows trans.Transition.old) in
  let new_row = List.hd (Temp_table.to_rows trans.Transition.new_) in
  Alcotest.(check int) "paired" (Value.to_int old_row.(2)) (Value.to_int new_row.(2));
  Alcotest.(check int) "old image" 1 (Value.to_int old_row.(1));
  Alcotest.(check int) "new image" 2 (Value.to_int new_row.(1));
  Transition.retire trans

(* ------------------------------------------------------------------ *)
(* Full rule behaviour through Strip_db.                                *)

let mkdb () =
  let db = Strip_db.create () in
  ignore (Strip_db.exec db "create table t (k string, v int)");
  ignore (Strip_db.exec db "create index t_k on t (k)");
  ignore (Strip_db.exec db "insert into t values ('a', 1), ('b', 2)");
  db

let test_condition_gates_action () =
  let db = mkdb () in
  let fired = ref 0 in
  Strip_db.register_function db "f" (fun _ -> incr fired);
  Strip_db.create_rule db
    {|create rule r on t when updated v
      if select new.k as k from new, old
         where new.execute_order = old.execute_order and new.v > 10
         bind as big
      then execute f|};
  ignore (Strip_db.exec db "update t set v = 5 where k = 'a'");
  Strip_db.run db;
  Alcotest.(check int) "condition false: no action" 0 !fired;
  ignore (Strip_db.exec db "update t set v = 50 where k = 'a'");
  Strip_db.run db;
  Alcotest.(check int) "condition true: action ran" 1 !fired

let test_bound_table_and_commit_time () =
  let db = mkdb () in
  let seen = ref [] in
  Strip_db.register_function db "f" (fun ctx ->
      List.iter
        (fun row -> seen := (Value.to_string row.(0), Value.to_float row.(1)) :: !seen)
        (Query.rows (Strip_txn.Transaction.query ctx.Rule_manager.txn
                       "select k, commit_time from changes")));
  Strip_db.create_rule db
    {|create rule r on t when updated v
      if select new.k as k, 0.0 as commit_time from new, old
         where new.execute_order = old.execute_order
         bind as changes
      then execute f after 1.0|};
  Strip_db.submit_update db ~at:3.25 (fun txn ->
      ignore (Transaction.exec txn "update t set v = 7 where k = 'b'"));
  Strip_db.run db;
  Alcotest.(check (list (pair string (float 1e-9))))
    "commit_time stamped at bind" [ ("b", 3.25) ] !seen

let test_evaluate_clause_binds () =
  let db = mkdb () in
  let n = ref (-1) in
  Strip_db.register_function db "f" (fun ctx ->
      n :=
        Query.row_count
          (Strip_txn.Transaction.query ctx.Rule_manager.txn
             "select k from snapshot"));
  Strip_db.create_rule db
    {|create rule r on t when updated v
      then
        evaluate select k from t bind as snapshot
        execute f|};
  ignore (Strip_db.exec db "update t set v = 9 where k = 'a'");
  Strip_db.run db;
  Alcotest.(check int) "whole-table snapshot bound" 2 !n

let test_non_unique_one_task_per_firing () =
  let db = mkdb () in
  let runs = ref 0 in
  Strip_db.register_function db "f" (fun _ -> incr runs);
  Strip_db.create_rule db
    {|create rule r on t when updated v
      if select new.k as k from new, old where new.execute_order = old.execute_order
         bind as c
      then execute f|};
  for i = 1 to 5 do
    Strip_db.submit_update db ~at:(float_of_int i *. 0.01) (fun txn ->
        ignore (Transaction.exec txn "update t set v = v + 1 where k = 'a'"))
  done;
  Strip_db.run db;
  Alcotest.(check int) "five firings, five transactions" 5 !runs

let test_multiple_rules_same_event () =
  let db = mkdb () in
  let calls = ref [] in
  Strip_db.register_function db "f1" (fun _ -> calls := "f1" :: !calls);
  Strip_db.register_function db "f2" (fun _ -> calls := "f2" :: !calls);
  Strip_db.create_rule db "create rule r1 on t when updated then execute f1";
  Strip_db.create_rule db "create rule r2 on t when updated then execute f2";
  ignore (Strip_db.exec db "update t set v = 0 where k = 'a'");
  Strip_db.run db;
  Alcotest.(check (list string)) "both fired" [ "f1"; "f2" ] (List.sort compare !calls)

let test_cascading_rules () =
  let db = mkdb () in
  ignore (Strip_db.exec db "create table log_t (k string)");
  let depth2 = ref 0 in
  Strip_db.register_function db "propagate" (fun ctx ->
      ignore
        (Transaction.exec ctx.Rule_manager.txn "insert into log_t values ('x')"));
  Strip_db.register_function db "observe" (fun _ -> incr depth2);
  Strip_db.create_rule db
    "create rule r1 on t when updated v then execute propagate";
  Strip_db.create_rule db
    "create rule r2 on log_t when inserted then execute observe";
  ignore (Strip_db.exec db "update t set v = 3 where k = 'a'");
  Strip_db.run db;
  Alcotest.(check int) "action triggered a second rule" 1 !depth2

let test_drop_rule () =
  let db = mkdb () in
  let runs = ref 0 in
  Strip_db.register_function db "f" (fun _ -> incr runs);
  Strip_db.create_rule db "create rule r on t when updated then execute f";
  Rule_manager.drop_rule (Strip_db.rules db) "r";
  ignore (Strip_db.exec db "update t set v = 0 where k = 'a'");
  Strip_db.run db;
  Alcotest.(check int) "dropped rule silent" 0 !runs;
  match Rule_manager.drop_rule (Strip_db.rules db) "r" with
  | exception Rule_manager.Rule_error _ -> ()
  | _ -> Alcotest.fail "double drop accepted"

let test_rule_validation () =
  let db = mkdb () in
  Strip_db.register_function db "f" (fun _ -> ());
  (match
     Strip_db.create_rule db "create rule r on ghost when updated then execute f"
   with
  | exception Rule_manager.Rule_error _ -> ()
  | _ -> Alcotest.fail "unknown table accepted");
  match
    Strip_db.create_rule db
      {|create rule r on t when updated
        if select new.k as k from new bind as c
        then execute f unique on nothere|}
  with
  | exception Rule_manager.Rule_error _ -> ()
  | _ -> Alcotest.fail "unique column outside bound tables accepted"

let test_unregistered_function_fails_at_run () =
  let db = mkdb () in
  Strip_db.create_rule db "create rule r on t when updated then execute ghost_fn";
  ignore (Strip_db.exec db "update t set v = 0 where k = 'a'");
  match Strip_db.run db with
  | exception Rule_manager.Rule_error _ -> ()
  | _ -> Alcotest.fail "missing user function not reported"

let suite =
  [
    ( "rules",
      [
        Alcotest.test_case "parse Figure 3" `Quick test_parse_fig3;
        Alcotest.test_case "parse Figure 6" `Quick test_parse_fig6;
        Alcotest.test_case "parse Figure 7 (unique on)" `Quick test_parse_fig7;
        Alcotest.test_case "parse event lists" `Quick test_parse_event_lists;
        Alcotest.test_case "parse evaluate clause" `Quick test_parse_evaluate_clause;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "rule DDL sniffing" `Quick test_is_rule_ddl;
        Alcotest.test_case "event matching" `Quick test_event_matches;
        Alcotest.test_case "transition tables" `Quick test_transition_tables;
        Alcotest.test_case "condition gates the action" `Quick test_condition_gates_action;
        Alcotest.test_case "bound tables + commit_time" `Quick
          test_bound_table_and_commit_time;
        Alcotest.test_case "evaluate clause binds" `Quick test_evaluate_clause_binds;
        Alcotest.test_case "non-unique: task per firing" `Quick
          test_non_unique_one_task_per_firing;
        Alcotest.test_case "several rules per event" `Quick test_multiple_rules_same_event;
        Alcotest.test_case "cascading rules" `Quick test_cascading_rules;
        Alcotest.test_case "drop rule" `Quick test_drop_rule;
        Alcotest.test_case "rule validation" `Quick test_rule_validation;
        Alcotest.test_case "missing user function" `Quick
          test_unregistered_function_fails_at_run;
      ] );
  ]
