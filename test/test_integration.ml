open Strip_relational
open Strip_txn
open Strip_core

(* End-to-end behaviours that cut across every layer. *)

let test_exec_script_mixes_sql_and_rules () =
  let db = Strip_db.create () in
  let hits = ref 0 in
  Strip_db.register_function db "bump" (fun _ -> incr hits);
  Strip_db.exec_script db
    {|create table t (k string, v int);
      create index t_k on t (k);
      insert into t values ('a', 1);
      create rule watch on t when updated v then execute bump;
      update t set v = 2 where k = 'a'|};
  Strip_db.run db;
  Alcotest.(check int) "rule from script fired" 1 !hits

let test_with_txn_commit_and_abort () =
  let db = Strip_db.create () in
  ignore (Strip_db.exec db "create table t (k string, v int)");
  Strip_db.with_txn db (fun txn ->
      ignore (Transaction.exec txn "insert into t values ('a', 1)");
      ignore (Transaction.exec txn "insert into t values ('b', 2)"));
  Alcotest.(check int) "committed" 2
    (List.length (Strip_db.query_rows db "select k from t"));
  (match
     Strip_db.with_txn db (fun txn ->
         ignore (Transaction.exec txn "insert into t values ('c', 3)");
         failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "rolled back" 2
    (List.length (Strip_db.query_rows db "select k from t"))

let test_failing_action_aborts_cleanly () =
  let db = Strip_db.create () in
  ignore (Strip_db.exec db "create table t (k string, v int)");
  ignore (Strip_db.exec db "create table audit (k string)");
  ignore (Strip_db.exec db "insert into t values ('a', 1)");
  Strip_db.register_function db "bad" (fun ctx ->
      ignore
        (Transaction.exec ctx.Rule_manager.txn "insert into audit values ('x')");
      failwith "action failure");
  Strip_db.create_rule db "create rule r on t when updated then execute bad";
  ignore (Strip_db.exec db "update t set v = 2 where k = 'a'");
  (match Strip_db.run db with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "action failure swallowed");
  Alcotest.(check int) "action transaction rolled back" 0
    (List.length (Strip_db.query_rows db "select k from audit"));
  Alcotest.(check string) "base change survives" "2"
    (Value.to_string (List.hd (Strip_db.query_rows db "select v from t")).(0))

let test_insert_triggered_view_refresh_is_exact () =
  (* a complete mini-application: watch inserts, maintain a running total *)
  let db = Strip_db.create () in
  Strip_db.exec_script db
    {|create table orders (customer string, total float);
      create index orders_c on orders (customer);
      create table balances (customer string, owed float);
      create index balances_c on balances (customer);
      insert into balances values ('alice', 0.0), ('bob', 0.0)|};
  Strip_db.register_function db "charge" (fun ctx ->
      let rows =
        Transaction.query ctx.Rule_manager.txn
          "select customer, sum(total) as t from new_orders group by customer"
      in
      List.iter
        (fun r ->
          ignore
            (Transaction.exec ctx.Rule_manager.txn
               (Printf.sprintf
                  "update balances set owed += %s where customer = '%s'"
                  (Value.to_string r.(1)) (Value.to_string r.(0)))))
        (Query.rows rows));
  Strip_db.create_rule db
    {|create rule on_order on orders when inserted
      if select customer, total from inserted bind as new_orders
      then execute charge unique on customer after 0.5 seconds|};
  List.iteri
    (fun i (c, v) ->
      Strip_db.submit_update db
        ~at:(0.05 *. float_of_int i)
        (fun txn ->
          ignore
            (Transaction.exec txn
               (Printf.sprintf "insert into orders values ('%s', %f)" c v))))
    [ ("alice", 10.0); ("bob", 5.0); ("alice", 2.5); ("alice", 1.0); ("bob", 4.0) ];
  Strip_db.run db;
  Alcotest.(check (list (pair string (float 1e-9))))
    "balances"
    [ ("alice", 13.5); ("bob", 9.0) ]
    (List.map
       (fun r -> (Value.to_string r.(0), Value.to_float r.(1)))
       (Strip_db.query_rows db
          "select customer, owed from balances order by customer"));
  (* batching actually happened: fewer action transactions than orders *)
  Alcotest.(check bool) "merged" true
    (Rule_manager.n_tasks_created (Strip_db.rules db) < 5)

let test_view_definitions_captured () =
  let db = Strip_db.create () in
  ignore (Strip_db.exec db "create table t (g string, x float)");
  ignore (Strip_db.exec db "insert into t values ('a', 1.0)");
  ignore
    (Strip_db.exec db "create view v as select g, sum(x) as s from t group by g");
  Alcotest.(check (list string)) "captured" [ "v" ]
    (List.map fst (Strip_db.view_definitions db));
  Alcotest.(check int) "materialized" 1
    (List.length (Strip_db.query_rows db "select g from v"))

let test_statement_routing () =
  let db = Strip_db.create () in
  ignore (Strip_db.exec db "create table t (a int)");
  Strip_db.register_function db "noop" (fun _ -> ());
  (match Strip_db.exec db "create rule r on t when inserted then execute noop" with
  | Sql_exec.Unit -> ()
  | _ -> Alcotest.fail "rule DDL should yield Unit");
  match Strip_db.exec db "insert into t values (1)" with
  | Sql_exec.Count 1 -> ()
  | _ -> Alcotest.fail "insert should yield Count 1"

let test_reclaim_lifecycle_under_rules () =
  (* The full §6.1 story: an update's pre-image stays alive exactly as long
     as a bound table references it. *)
  let db = Strip_db.create () in
  ignore (Strip_db.exec db "create table t (k string, v int)");
  ignore (Strip_db.exec db "insert into t values ('a', 1)");
  let observed = ref [] in
  Strip_db.register_function db "peek" (fun ctx ->
      let rows =
        Query.rows (Transaction.query ctx.Rule_manager.txn "select ov from img")
      in
      observed := Value.to_int (List.hd rows).(0) :: !observed);
  Strip_db.create_rule db
    {|create rule r on t when updated v
      if select old.v as ov from new, old
         where new.execute_order = old.execute_order
         bind as img
      then execute peek after 1.0 seconds|};
  ignore (Strip_db.exec db "update t set v = 2 where k = 'a'");
  (* overwrite again before the action runs: the bound table must still see
     the first pre-image *)
  ignore (Strip_db.exec db "update t set v = 3 where k = 'a'");
  Record.reset_reclaimed ();
  Strip_db.run db;
  (* each task sees its own firing's pre-image, even though both records
     were overwritten before the tasks ran *)
  Alcotest.(check (list int)) "both pre-images observed" [ 1; 2 ]
    (List.sort compare !observed);
  Alcotest.(check bool) "retired versions reclaimed after the tasks" true
    (Record.reclaimed_count () >= 2)

let test_periodic_recomputation () =
  (* §3: stock_stdev would be refreshed periodically rather than by rules *)
  let db = Strip_db.create () in
  ignore (Strip_db.exec db "create table gauge (n int)");
  ignore (Strip_db.exec db "insert into gauge values (0)");
  let times = ref [] in
  Strip_db.schedule_periodic db ~every:10.0 ~until:35.0 (fun txn ->
      times := Strip_db.now db :: !times;
      ignore (Transaction.exec txn "update gauge set n += 1"));
  (* interleave a normal update to show coexistence *)
  Strip_db.submit_update db ~at:12.0 (fun txn ->
      ignore (Transaction.exec txn "update gauge set n += 100"));
  Strip_db.run db;
  Alcotest.(check (list (float 0.01))) "fired on schedule" [ 10.0; 20.0; 30.0 ]
    (List.rev !times);
  Alcotest.(check string) "all effects applied" "103"
    (Value.to_string (List.hd (Strip_db.query_rows db "select n from gauge")).(0));
  match Strip_db.schedule_periodic db ~every:0.0 (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero period accepted"

let test_meter_snapshot_diff () =
  Meter.reset ();
  let before = Meter.snapshot () in
  Meter.tick "alpha_ctr";
  Meter.tick_n "alpha_ctr" 2;
  Meter.tick "beta_ctr";
  let d = Meter.diff before (Meter.snapshot ()) in
  Alcotest.(check (list (pair string int)))
    "deltas" [ ("alpha_ctr", 3); ("beta_ctr", 1) ]
    (List.filter (fun (k, _) -> k = "alpha_ctr" || k = "beta_ctr") d)

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "scripts mix SQL and rule DDL" `Quick
          test_exec_script_mixes_sql_and_rules;
        Alcotest.test_case "with_txn commit/abort" `Quick test_with_txn_commit_and_abort;
        Alcotest.test_case "failing action aborts cleanly" `Quick
          test_failing_action_aborts_cleanly;
        Alcotest.test_case "order-processing mini app" `Quick
          test_insert_triggered_view_refresh_is_exact;
        Alcotest.test_case "view definitions captured" `Quick
          test_view_definitions_captured;
        Alcotest.test_case "statement routing" `Quick test_statement_routing;
        Alcotest.test_case "pre-image lifecycle under rules (§6.1)" `Quick
          test_reclaim_lifecycle_under_rules;
        Alcotest.test_case "periodic recomputation (§3)" `Quick
          test_periodic_recomputation;
        Alcotest.test_case "meter snapshot diff" `Quick test_meter_snapshot_diff;
      ] );
  ]
