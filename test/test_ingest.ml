open Strip_relational
open Strip_txn
open Strip_core
open Strip_market
open Strip_ingest

let mkdb () =
  let db = Strip_db.create () in
  Strip_db.exec_script db
    {|create table stocks (symbol string, price float);
      create index stocks_sym on stocks (symbol)|};
  let cat = Strip_db.catalog db in
  let stocks = Catalog.table_exn cat "stocks" in
  let by_symbol = Option.get (Table.find_index stocks "stocks_sym") in
  (db, { Import.stocks; by_symbol })

let tiny_feed =
  {
    Feed.default_config with
    Feed.n_stocks = 30;
    duration = 60.0;
    target_updates = 150;
    seed = 11;
  }

let populate_stocks (db, target) cfg =
  let prices = Feed.initial_prices cfg in
  for s = 0 to cfg.Feed.n_stocks - 1 do
    ignore
      (Table.insert target.Import.stocks
         [| Value.Str (Taq.symbol s); Value.Float prices.(s) |])
  done;
  ignore db

let test_import_replays_trace () =
  let ((db, target) as h) = mkdb () in
  populate_stocks h tiny_feed;
  let quotes = Feed.generate tiny_feed in
  let n = Import.replay db target quotes in
  Alcotest.(check int) "all submitted" (Array.length quotes) n;
  Strip_db.run db;
  (* final table prices = last quote per stock *)
  let last = Hashtbl.create 32 in
  Array.iter
    (fun (q : Feed.quote) -> Hashtbl.replace last q.Feed.stock q.Feed.price)
    quotes;
  Hashtbl.iter
    (fun stock price ->
      let rows =
        Strip_db.query_rows db
          (Printf.sprintf "select price from stocks where symbol = '%s'"
             (Taq.symbol stock))
      in
      Alcotest.(check (float 1e-9))
        (Taq.symbol stock ^ " final price")
        price
        (Value.to_float (List.hd rows).(0)))
    last

let test_import_file_round_trip () =
  let ((db, target) as h) = mkdb () in
  populate_stocks h tiny_feed;
  let quotes = Feed.generate tiny_feed in
  let path = Filename.temp_file "strip_import" ".taq" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Taq.save path quotes;
      let n = Import.replay_file db target path in
      Alcotest.(check int) "count" (Array.length quotes) n;
      Strip_db.run db)

let test_export_immediate () =
  let (db, _) = mkdb () in
  ignore (Strip_db.exec db "insert into stocks values ('A', 1.0)");
  let got = ref [] in
  let sub =
    Export.subscribe db ~table:"stocks" ~columns:[ "symbol"; "price" ]
      (fun ~time ~rows ->
        List.iter
          (fun r ->
            got := (time, Value.to_string r.(0), Value.to_float r.(1)) :: !got)
          rows)
  in
  Strip_db.submit_update db ~at:1.0 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 2.0 where symbol = 'A'"));
  Strip_db.submit_update db ~at:2.0 (fun txn ->
      ignore (Transaction.exec txn "insert into stocks values ('B', 5.0)"));
  Strip_db.submit_update db ~at:3.0 (fun txn ->
      ignore (Transaction.exec txn "delete from stocks where symbol = 'B'"));
  Strip_db.run db;
  Alcotest.(check int) "three deliveries" 3 (Export.deliveries sub);
  (* updates deliver new images, deletes deliver old images *)
  (* delivery time = the action's dispatch instant, a task-service length
     after the triggering update *)
  Alcotest.(check (list (triple (float 0.01) string (float 1e-9))))
    "stream"
    [ (1.0, "A", 2.0); (2.0, "B", 5.0); (3.0, "B", 5.0) ]
    (List.rev !got)

let test_export_batched () =
  let (db, _) = mkdb () in
  ignore (Strip_db.exec db "insert into stocks values ('A', 1.0)");
  let batches = ref [] in
  let sub =
    Export.subscribe db ~table:"stocks" ~batch:1.0 ~columns:[ "price" ]
      (fun ~time:_ ~rows -> batches := List.length rows :: !batches)
  in
  List.iter
    (fun (at, p) ->
      Strip_db.submit_update db ~at (fun txn ->
          ignore
            (Transaction.exec txn
               (Printf.sprintf "update stocks set price = %f where symbol = 'A'" p))))
    [ (0.1, 2.0); (0.3, 3.0); (0.5, 4.0) ];
  Strip_db.run db;
  Alcotest.(check int) "one conflated delivery" 1 (Export.deliveries sub);
  Alcotest.(check (list int)) "all three changes in it" [ 3 ] !batches

let test_export_event_filter_and_unsubscribe () =
  let (db, _) = mkdb () in
  ignore (Strip_db.exec db "insert into stocks values ('A', 1.0)");
  let n = ref 0 in
  let sub =
    Export.subscribe db ~table:"stocks" ~events:[ Export.On_delete ]
      (fun ~time:_ ~rows:_ -> incr n)
  in
  ignore (Strip_db.exec db "update stocks set price = 9.0 where symbol = 'A'");
  Strip_db.run db;
  Alcotest.(check int) "update filtered out" 0 !n;
  ignore (Strip_db.exec db "delete from stocks where symbol = 'A'");
  Strip_db.run db;
  Alcotest.(check int) "delete delivered" 1 !n;
  Export.unsubscribe db sub;
  ignore (Strip_db.exec db "insert into stocks values ('C', 1.0)");
  ignore (Strip_db.exec db "delete from stocks where symbol = 'C'");
  Strip_db.run db;
  Alcotest.(check int) "silent after unsubscribe" 1 !n;
  Export.unsubscribe db sub (* idempotent *)

let test_export_unknown_table () =
  let (db, _) = mkdb () in
  match Export.subscribe db ~table:"ghost" (fun ~time:_ ~rows:_ -> ()) with
  | exception Rule_manager.Rule_error _ -> ()
  | _ -> Alcotest.fail "unknown table accepted"

let suite =
  [
    ( "ingest",
      [
        Alcotest.test_case "import replays a trace" `Quick test_import_replays_trace;
        Alcotest.test_case "import from TAQ file" `Quick test_import_file_round_trip;
        Alcotest.test_case "export: immediate deliveries" `Quick test_export_immediate;
        Alcotest.test_case "export: batched (conflated) deliveries" `Quick
          test_export_batched;
        Alcotest.test_case "export: event filter + unsubscribe" `Quick
          test_export_event_filter_and_unsubscribe;
        Alcotest.test_case "export: unknown table" `Quick test_export_unknown_table;
      ] );
  ]
