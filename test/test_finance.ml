open Strip_finance
open Strip_relational

let feq tol = Alcotest.(check (float tol))

(* Reference erf values (Abramowitz & Stegun tables). *)
let test_erf () =
  feq 2e-7 "erf 0" 0.0 (Normal.erf 0.0);
  feq 2e-7 "erf 0.5" 0.5204999 (Normal.erf 0.5);
  feq 2e-7 "erf 1" 0.8427008 (Normal.erf 1.0);
  feq 2e-7 "erf 2" 0.9953223 (Normal.erf 2.0);
  feq 2e-7 "odd symmetry" (-.Normal.erf 0.7) (Normal.erf (-0.7))

let test_cdf () =
  feq 1e-7 "phi 0" 0.5 (Normal.cdf 0.0);
  feq 2e-7 "phi 1.96" 0.9750021 (Normal.cdf 1.96);
  feq 2e-7 "phi -1.96" 0.0249979 (Normal.cdf (-1.96));
  feq 1e-7 "pdf 0" 0.3989423 (Normal.pdf 0.0)

(* Black-Scholes reference: S=100, K=100, r=5%, sigma=20%, t=1y -> 10.4506. *)
let test_bs_reference_values () =
  feq 2e-3 "at the money"
    10.4506
    (Black_scholes.call ~stock_price:100.0 ~strike:100.0 ~rate:0.05
       ~volatility:0.2 ~expiry_years:1.0);
  (* S=42, K=40, r=10%, sigma=20%, t=0.5 -> 4.7594 (Hull's textbook example) *)
  feq 2e-3 "hull example"
    4.7594
    (Black_scholes.call ~stock_price:42.0 ~strike:40.0 ~rate:0.1
       ~volatility:0.2 ~expiry_years:0.5)

let test_bs_limits () =
  (* expired or zero-vol option = discounted intrinsic value *)
  feq 1e-12 "expired OTM" 0.0
    (Black_scholes.call ~stock_price:90.0 ~strike:100.0 ~rate:0.05
       ~volatility:0.3 ~expiry_years:0.0);
  feq 1e-9 "zero vol ITM"
    (100.0 -. (90.0 *. Float.exp (-0.05)))
    (Black_scholes.call ~stock_price:100.0 ~strike:90.0 ~rate:0.05
       ~volatility:0.0 ~expiry_years:1.0);
  (* deep in the money approaches S - K e^-rt *)
  feq 1e-3 "deep ITM"
    (1000.0 -. (10.0 *. Float.exp (-0.05)))
    (Black_scholes.call ~stock_price:1000.0 ~strike:10.0 ~rate:0.05
       ~volatility:0.2 ~expiry_years:1.0);
  match
    Black_scholes.call ~stock_price:(-1.0) ~strike:10.0 ~rate:0.0
      ~volatility:0.1 ~expiry_years:1.0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative price accepted"

let prop_bs_monotone_in_price =
  QCheck2.Test.make ~name:"call price increases with stock price" ~count:200
    QCheck2.Gen.(
      quad (float_range 10.0 200.0) (float_range 10.0 200.0)
        (float_range 0.05 0.6) (float_range 0.05 2.0))
    (fun (s, k, vol, t) ->
      let p1 =
        Black_scholes.call ~stock_price:s ~strike:k ~rate:0.05 ~volatility:vol
          ~expiry_years:t
      and p2 =
        Black_scholes.call ~stock_price:(s +. 1.0) ~strike:k ~rate:0.05
          ~volatility:vol ~expiry_years:t
      in
      p2 >= p1 -. 1e-9)

let prop_bs_bounds =
  QCheck2.Test.make ~name:"intrinsic <= call <= stock price" ~count:200
    QCheck2.Gen.(
      quad (float_range 10.0 200.0) (float_range 10.0 200.0)
        (float_range 0.05 0.6) (float_range 0.05 2.0))
    (fun (s, k, vol, t) ->
      let p =
        Black_scholes.call ~stock_price:s ~strike:k ~rate:0.05 ~volatility:vol
          ~expiry_years:t
      in
      let intrinsic = Float.max 0.0 (s -. (k *. Float.exp (-0.05 *. t))) in
      p >= intrinsic -. 1e-6 && p <= s +. 1e-6)

let test_bs_meters () =
  Meter.reset ();
  ignore
    (Black_scholes.call ~stock_price:100.0 ~strike:100.0 ~rate:0.05
       ~volatility:0.2 ~expiry_years:1.0);
  Alcotest.(check int) "bs_eval ticked" 1 (Meter.get "bs_eval")

let test_sql_function () =
  Black_scholes.register_sql_function ();
  let direct =
    Black_scholes.call ~stock_price:50.0 ~strike:55.0
      ~rate:Black_scholes.default_rate ~volatility:0.3 ~expiry_years:0.25
  in
  let via_sql =
    Expr.eval
      (Expr.Call
         ( "f_bs",
           [ Expr.float 50.0; Expr.float 55.0; Expr.float 0.25; Expr.float 0.3 ] ))
      [||]
  in
  feq 1e-12 "f_bs agrees" direct (Value.to_float via_sql);
  Alcotest.(check bool) "null propagates" true
    (Value.is_null
       (Expr.eval
          (Expr.Call
             ( "f_bs",
               [ Expr.Const Value.Null; Expr.float 55.0; Expr.float 0.25;
                 Expr.float 0.3 ] ))
          [||]))

let test_composite () =
  feq 1e-12 "price" 65.0
    (Composite.price ~weights:[| 0.5; 0.5 |] ~prices:[| 100.0; 30.0 |]);
  feq 1e-12 "delta" (-0.7)
    (Composite.delta ~weight:0.7 ~old_price:40.0 ~new_price:39.0);
  feq 1e-12 "fold deltas" 41.0
    (Composite.apply_deltas 40.0 [ (0.5, 30.0, 31.0); (0.5, 50.0, 51.0) ]);
  match Composite.price ~weights:[| 1.0 |] ~prices:[||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

let prop_composite_incremental_equals_full =
  QCheck2.Test.make
    ~name:"incremental composite maintenance = full recomputation" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 10) (float_range 0.1 2.0))
        (list_size (int_range 0 20) (pair (int_range 0 9) (float_range 1.0 100.0))))
    (fun (weights, changes) ->
      let n = Array.length weights in
      let prices = Array.make n 50.0 in
      let current = ref (Composite.price ~weights ~prices) in
      List.iter
        (fun (i, p) ->
          let i = i mod n in
          current :=
            !current
            +. Composite.delta ~weight:weights.(i) ~old_price:prices.(i)
                 ~new_price:p;
          prices.(i) <- p)
        changes;
      Float.abs (!current -. Composite.price ~weights ~prices) < 1e-9)

let suite =
  [
    ( "finance",
      [
        Alcotest.test_case "erf reference values" `Quick test_erf;
        Alcotest.test_case "normal cdf/pdf" `Quick test_cdf;
        Alcotest.test_case "Black-Scholes reference values" `Quick
          test_bs_reference_values;
        Alcotest.test_case "Black-Scholes limits" `Quick test_bs_limits;
        QCheck_alcotest.to_alcotest prop_bs_monotone_in_price;
        QCheck_alcotest.to_alcotest prop_bs_bounds;
        Alcotest.test_case "metering" `Quick test_bs_meters;
        Alcotest.test_case "f_bs SQL function" `Quick test_sql_function;
        Alcotest.test_case "composite math" `Quick test_composite;
        QCheck_alcotest.to_alcotest prop_composite_incremental_equals_full;
      ] );
  ]
