(* The failure subsystem: deterministic fault injection, retry with
   exponential backoff, dead letters, unique-batch survival across
   failures, and overload shedding. *)

open Strip_relational
open Strip_txn
open Strip_core
open Strip_pta
module Engine = Strip_sim.Engine
module Stats = Strip_sim.Stats

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* ------------------------------------------------------------------ *)
(* Fault injector *)

(* One draw per fire; [true] = injected. *)
let abort_decisions fi n =
  List.init n (fun i ->
      match Fault.fire fi ~site:Fault.Txn_abort ~txid:i ~detail:"d" with
      | () -> false
      | exception _ -> true)

let test_fault_determinism () =
  let cfg = Fault.abort_only ~seed:7 0.3 in
  let a = abort_decisions (Fault.create cfg) 200 in
  let b = abort_decisions (Fault.create cfg) 200 in
  Alcotest.(check (list bool)) "same seed, same decisions" a b;
  let fi = Fault.create cfg in
  let hits = List.filter Fun.id (abort_decisions fi 200) in
  Alcotest.(check int) "per-site count matches decisions" (List.length hits)
    (Fault.injected fi Fault.Txn_abort);
  Alcotest.(check int) "total = only active site" (List.length hits)
    (Fault.total_injected fi);
  Alcotest.(check bool) "rate 0.3 fires sometimes" true (hits <> [])

let test_fault_zero_rate_sites_consume_no_randomness () =
  let cfg = Fault.abort_only ~seed:11 0.5 in
  let plain = abort_decisions (Fault.create cfg) 100 in
  (* interleave fires at sites whose rate is 0: the abort-site decision
     sequence must be unchanged, so adding instrumentation to a new site
     cannot perturb existing runs *)
  let fi = Fault.create cfg in
  let interleaved =
    List.init 100 (fun i ->
        Fault.fire fi ~site:Fault.Lock_conflict ~txid:i ~detail:"d";
        Fault.fire fi ~site:Fault.User_fun ~txid:i ~detail:"d";
        match Fault.fire fi ~site:Fault.Txn_abort ~txid:i ~detail:"d" with
        | () -> false
        | exception _ -> true)
  in
  Alcotest.(check (list bool)) "zero-rate sites are transparent" plain
    interleaved

let test_fault_inactive () =
  let fi = Fault.create Fault.default_config in
  Alcotest.(check bool) "all-zero rates = inactive" false (Fault.active fi);
  for i = 0 to 99 do
    Fault.fire fi ~site:Fault.Deadlock ~txid:i ~detail:"d"
  done;
  Alcotest.(check int) "never fires" 0 (Fault.total_injected fi)

(* ------------------------------------------------------------------ *)
(* Engine retry / dead letters *)

let mk_engine ?retry ?overload () =
  let clock = Clock.create () in
  (clock, Engine.create ~clock ?retry ?overload ())

let test_retry_then_succeed () =
  let retry =
    { Engine.max_attempts = 5; base_backoff_s = 0.1; max_backoff_s = 10.0 }
  in
  let clock, eng = mk_engine ~retry () in
  let times = ref [] in
  let task =
    Task.create ~klass:Task.Recompute ~func_name:"flaky" ~release_time:0.0
      ~created_at:0.0 (fun t ->
        times := Clock.now clock :: !times;
        if t.Task.attempts <= 2 then failwith "transient")
  in
  Engine.submit eng task;
  Engine.run eng;
  Alcotest.(check bool) "eventually done" true (task.Task.state = Task.Done);
  Alcotest.(check int) "three attempts" 3 task.Task.attempts;
  (match List.rev !times with
  | [ t1; t2; t3 ] ->
    (* backoff doubles: >= 0.1 s after the first failure, >= 0.2 s after
       the second *)
    Alcotest.(check bool) "first backoff" true (t2 -. t1 >= 0.1);
    Alcotest.(check bool) "second backoff doubled" true (t3 -. t2 >= 0.2)
  | l -> Alcotest.failf "expected 3 dispatches, got %d" (List.length l));
  let s = Engine.stats eng in
  Alcotest.(check int) "aborts" 2 (Stats.n_aborts s);
  Alcotest.(check int) "retries" 2 (Stats.n_retries s);
  Alcotest.(check int) "no dead letters" 0 (Stats.n_dead_letters s);
  Alcotest.(check int) "one recovery" 1 (Stats.n_recoveries s);
  Alcotest.(check bool) "recovery latency spans the backoffs" true
    (Stats.mean_recovery_s s >= 0.3)

let test_dead_letter_after_budget () =
  let retry =
    { Engine.max_attempts = 3; base_backoff_s = 0.01; max_backoff_s = 1.0 }
  in
  let _, eng = mk_engine ~retry () in
  let task =
    Task.create ~klass:Task.Recompute ~func_name:"doomed" ~release_time:0.0
      ~created_at:0.0 (fun _ -> failwith "always")
  in
  Engine.submit eng task;
  Engine.run eng;
  (* run returns: exhausting the budget must not propagate the failure *)
  Alcotest.(check int) "attempts = budget" 3 task.Task.attempts;
  Alcotest.(check bool) "discarded" true (task.Task.state = Task.Cancelled);
  (match Engine.dead_letters eng with
  | [ t ] -> Alcotest.(check string) "the task" "doomed" t.Task.func_name
  | l -> Alcotest.failf "expected 1 dead letter, got %d" (List.length l));
  let s = Engine.stats eng in
  Alcotest.(check int) "aborts" 3 (Stats.n_aborts s);
  Alcotest.(check int) "retries" 2 (Stats.n_retries s);
  Alcotest.(check int) "dead letters" 1 (Stats.n_dead_letters s)

let test_fatal_errors_not_retried () =
  let _, eng = mk_engine ~retry:Engine.default_retry () in
  Engine.set_fatal_filter eng (function Failure _ -> true | _ -> false);
  let task =
    Task.create ~klass:Task.Recompute ~func_name:"broken" ~release_time:0.0
      ~created_at:0.0 (fun _ -> failwith "programming error")
  in
  Engine.submit eng task;
  (match Engine.run eng with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "fatal error should propagate");
  Alcotest.(check int) "no retries" 0 (Stats.n_retries (Engine.stats eng));
  Alcotest.(check bool) "discarded, not dead-lettered" true
    (task.Task.state = Task.Cancelled && Engine.dead_letters eng = [])

(* ------------------------------------------------------------------ *)
(* Overload shedding *)

let test_overload_sheds_worst_victims () =
  let clock = Clock.create ~now:10.0 () in
  let eng =
    Engine.create ~clock
      ~overload:{ Engine.high_watermark = 2; shed_policy = Engine.Drop }
      ()
  in
  let ran = ref [] in
  let mk ?deadline ~value name =
    Task.create ~klass:Task.Recompute ~func_name:name ?deadline ~value
      ~release_time:11.0 ~created_at:10.0 (fun t ->
        ran := t.Task.func_name :: !ran)
  in
  let t1 = mk ~value:5.0 "t1" in
  let t2 = mk ~value:4.0 "t2" in
  let t3 = mk ~value:3.0 "t3" in
  let t4 = mk ~deadline:5.0 ~value:100.0 "t4" (* deadline already expired *) in
  let t5 = mk ~value:0.5 "t5" in
  Engine.submit eng t1;
  Engine.submit eng t2;
  Alcotest.(check int) "under watermark, nothing shed" 0
    (Stats.n_sheds (Engine.stats eng));
  Engine.submit eng t3;
  (* 3 live > watermark 2: lowest-value victim goes (t2), never the
     incoming task *)
  Alcotest.(check bool) "t2 shed" true (t2.Task.state = Task.Cancelled);
  Alcotest.(check bool) "t3 kept" true (t3.Task.state = Task.Pending);
  Engine.submit eng t4;
  (* t3 is now the cheapest live victim *)
  Alcotest.(check bool) "t3 shed" true (t3.Task.state = Task.Cancelled);
  Engine.submit eng t5;
  (* expired deadline outranks even the highest value *)
  Alcotest.(check bool) "expired t4 shed first" true
    (t4.Task.state = Task.Cancelled);
  Alcotest.(check int) "every shed counted" 3 (Stats.n_sheds (Engine.stats eng));
  Alcotest.(check int) "backlog back at watermark" 2 (Engine.backlog eng);
  Engine.run eng;
  Alcotest.(check (list string)) "engine stays live for survivors"
    [ "t1"; "t5" ] (List.rev !ran)

let test_overload_coalesce_absorbs_rows () =
  let clock = Clock.create () in
  let eng =
    Engine.create ~clock
      ~overload:{ Engine.high_watermark = 1; shed_policy = Engine.Coalesce }
      ()
  in
  let schema = Schema.of_list [ ("x", Value.TInt) ] in
  let mk rows =
    let tmp = Temp_table.create_materialized ~name:"b" ~schema in
    List.iter (fun v -> Temp_table.append_values tmp [| Value.Int v |]) rows;
    ( tmp,
      Task.create ~klass:Task.Recompute ~func_name:"f" ~bound:[ ("b", tmp) ]
        ~release_time:5.0 ~created_at:0.0 (fun _ -> ()) )
  in
  let tmp_a, t_a = mk [ 1; 2 ] in
  let tmp_b, t_b = mk [ 3 ] in
  Engine.submit eng t_a;
  Engine.submit eng t_b;
  Alcotest.(check bool) "victim cancelled" true (t_a.Task.state = Task.Cancelled);
  Alcotest.(check bool) "victim's table retired" true (Temp_table.retired tmp_a);
  Alcotest.(check int) "rows folded into the survivor" 3
    (Temp_table.cardinal tmp_b);
  let s = Engine.stats eng in
  Alcotest.(check int) "shed counted" 1 (Stats.n_sheds s);
  Alcotest.(check int) "as a coalesce" 1 (Stats.n_coalesced s);
  Engine.run eng;
  Alcotest.(check bool) "survivor ran" true (t_b.Task.state = Task.Done)

(* ------------------------------------------------------------------ *)
(* Unique batching across failures (the Figure 4/5 example, with the
   user function failing transiently on its first dispatch). *)

let setup_figure4 ~retry () =
  let db = Strip_db.create ~retry () in
  Strip_db.exec_script db
    {|create table stocks (symbol string, price float);
      create index stocks_sym on stocks (symbol);
      create table comps_list (comp string, symbol string, weight float);
      create index cl_sym on comps_list (symbol);
      create table comp_prices (comp string, price float);
      create index cp_comp on comp_prices (comp);
      insert into stocks values ('S1', 30.0), ('S2', 40.0), ('S3', 50.0);
      insert into comps_list values
        ('C1','S1',0.5), ('C1','S3',0.5), ('C2','S1',0.3), ('C2','S2',0.7);
      insert into comp_prices values ('C1', 40.0), ('C2', 37.0)|};
  db

let condition =
  {|select comp, comps_list.symbol as symbol, weight,
           old.price as old_price, new.price as new_price
    from comps_list, new, old
    where comps_list.symbol = new.symbol
      and new.execute_order = old.execute_order
    bind as matches|}

let test_unique_batch_survives_failure () =
  let retry =
    { Engine.max_attempts = 5; base_backoff_s = 0.2; max_backoff_s = 2.0 }
  in
  let db = setup_figure4 ~retry () in
  let calls = ref 0 and batch_rows = ref 0 in
  Strip_db.register_function db "f" (fun ctx ->
      incr calls;
      if !calls = 1 then failwith "transient";
      let r =
        Transaction.query ctx.Rule_manager.txn
          "select comp, sum((new_price - old_price) * weight) as diff from \
           matches group by comp"
      in
      batch_rows :=
        Query.row_count
          (Transaction.query ctx.Rule_manager.txn "select comp from matches");
      List.iter
        (fun row ->
          ignore
            (Transaction.exec ctx.Rule_manager.txn
               (Printf.sprintf
                  "update comp_prices set price += %.17g where comp = '%s'"
                  (Value.to_float row.(1))
                  (Value.to_string row.(0)))))
        (Query.rows r));
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r on stocks when updated price if %s then execute f \
        unique after 1.0 seconds"
       condition);
  (* T1 and T2 fire before the action's release (normal merging); T3 fires
     while the failed action waits out its backoff, so it only reaches the
     batch if the retried task was re-registered in the unique hash. *)
  Strip_db.submit_update db ~at:0.0 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'");
      ignore (Transaction.exec txn "update stocks set price = 39.0 where symbol = 'S2'"));
  Strip_db.submit_update db ~at:0.3 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 38.0 where symbol = 'S2'");
      ignore (Transaction.exec txn "update stocks set price = 51.0 where symbol = 'S3'"));
  Strip_db.submit_update db ~at:1.05 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 32.0 where symbol = 'S1'"));
  Strip_db.run db;
  let mgr = Strip_db.rules db in
  Alcotest.(check int) "one unique transaction" 1 (Rule_manager.n_tasks_created mgr);
  Alcotest.(check int) "T2 merged pre-failure, T3 during backoff" 2
    (Rule_manager.n_merges mgr);
  Alcotest.(check int) "failed once, succeeded once" 2 !calls;
  Alcotest.(check int) "all three transactions' rows in the batch" 7 !batch_rows;
  let s = Strip_db.stats db in
  Alcotest.(check int) "abort recorded" 1 (Stats.n_aborts s);
  Alcotest.(check int) "retry recorded" 1 (Stats.n_retries s);
  Alcotest.(check int) "recovered" 1 (Stats.n_recoveries s);
  Alcotest.(check (list (pair string (float 1e-9))))
    "view caught up: nothing lost, nothing doubled"
    [ ("C1", 41.5); ("C2", 36.2) ]
    (List.map
       (fun row -> (Value.to_string row.(0), Value.to_float row.(1)))
       (Strip_db.query_rows db "select comp, price from comp_prices order by comp"))

let test_rule_error_is_fatal_in_db () =
  (* An unregistered user function is a programming error: even with retry
     on, it must fail fast instead of burning the retry budget. *)
  let db = setup_figure4 ~retry:Engine.default_retry () in
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r on stocks when updated price if %s then execute nosuch"
       condition);
  Strip_db.submit_update db ~at:0.0 (fun txn ->
      ignore (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'"));
  (match Strip_db.run db with
  | exception Rule_manager.Rule_error _ -> ()
  | () -> Alcotest.fail "missing user function should propagate");
  Alcotest.(check int) "not retried" 0 (Stats.n_retries (Strip_db.stats db))

(* ------------------------------------------------------------------ *)
(* Injected aborts through Strip_db *)

let test_injected_aborts_dead_letter_when_budget_exhausted () =
  let db =
    Strip_db.create
      ~fault:(Fault.abort_only ~seed:3 1.0) (* every commit aborts *)
      ~retry:{ Engine.max_attempts = 2; base_backoff_s = 0.01; max_backoff_s = 1.0 }
      ()
  in
  Strip_db.exec db "create table t (k int)" |> ignore;
  Strip_db.submit_update db ~at:0.0 ~label:"doomed" (fun txn ->
      ignore (Transaction.exec txn "insert into t values (1)"));
  Strip_db.run db;
  Alcotest.(check int) "dead-lettered, not lost silently" 1
    (List.length (Engine.dead_letters (Strip_db.engine db)));
  Alcotest.(check int) "both attempts aborted" 2
    (Stats.n_aborts (Strip_db.stats db));
  Alcotest.(check (list (list string))) "no effect survived the aborts" []
    (List.map
       (fun r -> Array.to_list (Array.map Value.to_string r))
       (Strip_db.query_rows db "select k from t"));
  match Strip_db.fault_injector db with
  | Some fi -> Alcotest.(check int) "injections counted" 2 (Fault.total_injected fi)
  | None -> Alcotest.fail "injector not installed"

let test_experiment_converges_under_faults () =
  let cfg =
    Experiment.default_config
      (Experiment.Comp_view Comp_rules.Unique_on_symbol) ~delay:0.5
  in
  let cfg = Experiment.quick cfg 0.02 in
  let cfg = Experiment.with_faults ~seed:7 ~abort_rate:0.15 cfg in
  let m = Experiment.run cfg in
  Alcotest.(check bool) "faults were injected" true (m.Experiment.n_injected > 0);
  Alcotest.(check int) "every abort retried or dead-lettered"
    m.Experiment.n_aborts
    (m.Experiment.n_retries + m.Experiment.n_dead_letters);
  Alcotest.(check (option bool)) "maintained view converged" (Some true)
    m.Experiment.verified

(* ------------------------------------------------------------------ *)
(* Script errors *)

let test_script_error_reports_statement () =
  let db = Strip_db.create () in
  (match
     Strip_db.exec_script db
       {|create table t (k int);
         insert into t values (1);
         insert into nosuch values (2);
         insert into t values (3)|}
   with
  | exception Strip_db.Script_error { index; source; cause = _ } ->
    Alcotest.(check int) "failing statement index" 3 index;
    Alcotest.(check bool) "source text reconstructed" true
      (contains source "nosuch")
  | () -> Alcotest.fail "bad statement should raise Script_error");
  (* earlier statements committed, the failing one aborted cleanly, and the
     database stays usable *)
  Alcotest.(check int) "prefix committed" 1
    (List.length (Strip_db.query_rows db "select k from t"));
  Strip_db.exec db "insert into t values (4)" |> ignore;
  Alcotest.(check int) "still usable" 2
    (List.length (Strip_db.query_rows db "select k from t"))

let suite =
  [
    ( "robustness",
      [
        Alcotest.test_case "fault injection is deterministic" `Quick
          test_fault_determinism;
        Alcotest.test_case "zero-rate sites consume no randomness" `Quick
          test_fault_zero_rate_sites_consume_no_randomness;
        Alcotest.test_case "inactive injector never fires" `Quick
          test_fault_inactive;
        Alcotest.test_case "retry with exponential backoff" `Quick
          test_retry_then_succeed;
        Alcotest.test_case "dead letter after budget" `Quick
          test_dead_letter_after_budget;
        Alcotest.test_case "fatal errors not retried" `Quick
          test_fatal_errors_not_retried;
        Alcotest.test_case "overload sheds worst victims" `Quick
          test_overload_sheds_worst_victims;
        Alcotest.test_case "coalesce shed absorbs rows" `Quick
          test_overload_coalesce_absorbs_rows;
        Alcotest.test_case "unique batch survives failure" `Quick
          test_unique_batch_survives_failure;
        Alcotest.test_case "rule errors fail fast" `Quick
          test_rule_error_is_fatal_in_db;
        Alcotest.test_case "injected aborts dead-letter" `Quick
          test_injected_aborts_dead_letter_when_budget_exhausted;
        Alcotest.test_case "experiment converges under faults" `Slow
          test_experiment_converges_under_faults;
        Alcotest.test_case "script errors name the statement" `Quick
          test_script_error_reports_statement;
      ] );
  ]
