open Strip_relational
open Strip_txn

let setup () =
  let cat = Catalog.create () in
  let tb =
    Catalog.create_table cat ~name:"t"
      ~schema:(Schema.of_list [ ("k", Value.TStr); ("v", Value.TInt) ])
  in
  ignore (Table.create_index tb ~name:"t_k" ~kind:Index.Hash ~cols:[ "k" ]);
  let locks = Lock.create () in
  let clock = Clock.create () in
  (cat, tb, locks, clock)

let begin_ (cat, _, locks, clock) = Transaction.begin_ ~cat ~locks ~clock ()

let contents tb =
  List.map
    (fun r -> (Value.to_string r.(0), Value.to_int r.(1)))
    (Table.to_rows tb)

let test_commit_time () =
  let ((_, _, _, clock) as env) = setup () in
  let txn = begin_ env in
  Clock.advance_to clock 5.5;
  ignore (Transaction.exec txn "insert into t values ('a', 1)");
  Transaction.commit txn;
  Alcotest.(check (float 1e-9)) "stamped at commit" 5.5 (Transaction.commit_time txn);
  Alcotest.(check bool) "status" true (Transaction.status txn = Transaction.Committed)

let test_abort_undoes_everything () =
  let ((_, tb, _, _) as env) = setup () in
  let t0 = begin_ env in
  ignore (Transaction.exec t0 "insert into t values ('a',1),('b',2),('c',3)");
  Transaction.commit t0;
  Transaction.cleanup t0;
  let txn = begin_ env in
  ignore (Transaction.exec txn "update t set v = 10 where k = 'a'");
  ignore (Transaction.exec txn "delete from t where k = 'b'");
  ignore (Transaction.exec txn "insert into t values ('d', 4)");
  ignore (Transaction.exec txn "update t set v += 5 where k = 'd'");
  Alcotest.(check int) "changes applied" 4 (Tlog.length (Transaction.log txn));
  Transaction.abort txn;
  Alcotest.(check (list (pair string int)))
    "state restored"
    [ ("a", 1); ("c", 3); ("b", 2) ]
    (* note: the undo of a delete re-appends, so 'b' moves to the end *)
    (contents tb);
  Alcotest.(check bool) "status" true (Transaction.status txn = Transaction.Aborted)

let test_log_execute_order () =
  let env = setup () in
  let txn = begin_ env in
  ignore (Transaction.exec txn "insert into t values ('a', 1)");
  ignore (Transaction.exec txn "update t set v = 2 where k = 'a'");
  ignore (Transaction.exec txn "update t set v = 3 where k = 'a'");
  let entries = Tlog.entries (Transaction.log txn) in
  Alcotest.(check (list int)) "sequence" [ 1; 2; 3 ]
    (List.map (fun (e : Tlog.entry) -> e.execute_order) entries);
  (match entries with
  | [ { change = Tlog.Inserted _; _ };
      { change = Tlog.Updated { old_rec = o1; new_rec = n1 }; _ };
      { change = Tlog.Updated { old_rec = o2; new_rec = n2 }; _ } ] ->
    Alcotest.(check int) "chain old1" 1 (Value.to_int (Record.value o1 1));
    Alcotest.(check int) "chain new1" 2 (Value.to_int (Record.value n1 1));
    Alcotest.(check int) "chain old2" 2 (Value.to_int (Record.value o2 1));
    Alcotest.(check int) "chain new2" 3 (Value.to_int (Record.value n2 1))
  | _ -> Alcotest.fail "unexpected log shape");
  Transaction.commit txn;
  Transaction.cleanup txn

let test_pre_images_pinned_until_cleanup () =
  let env = setup () in
  let t0 = begin_ env in
  ignore (Transaction.exec t0 "insert into t values ('a', 1)");
  Transaction.commit t0;
  Transaction.cleanup t0;
  let txn = begin_ env in
  ignore (Transaction.exec txn "update t set v = 2 where k = 'a'");
  let old_rec =
    match Tlog.entries (Transaction.log txn) with
    | [ { change = Tlog.Updated { old_rec; _ }; _ } ] -> old_rec
    | _ -> Alcotest.fail "expected one update"
  in
  Transaction.commit txn;
  Record.reset_reclaimed ();
  Alcotest.(check int) "still pinned after commit" 0 (Record.reclaimed_count ());
  Alcotest.(check bool) "pin held" true (old_rec.Record.refcount > 0);
  Transaction.cleanup txn;
  Alcotest.(check int) "reclaimed at cleanup" 1 (Record.reclaimed_count ())

let test_locks_block_and_upgrade () =
  let locks = Lock.create () in
  let r = Lock.Rec ("t", 1) in
  Alcotest.(check bool) "t1 S" true (Lock.acquire locks ~owner:1 r Lock.S = Lock.Granted);
  Alcotest.(check bool) "t2 S shares" true
    (Lock.acquire locks ~owner:2 r Lock.S = Lock.Granted);
  (match Lock.acquire locks ~owner:1 r Lock.X with
  | Lock.Blocked [ 2 ] -> ()
  | _ -> Alcotest.fail "upgrade should block on the other holder");
  Lock.release_all locks ~owner:2;
  Alcotest.(check bool) "upgrade after release" true
    (Lock.acquire locks ~owner:1 r Lock.X = Lock.Granted);
  (match Lock.acquire locks ~owner:3 r Lock.S with
  | Lock.Blocked [ 1 ] -> ()
  | _ -> Alcotest.fail "S behind X should block");
  Alcotest.(check (option Alcotest.bool)) "holds X" (Some true)
    (Option.map (fun m -> m = Lock.X) (Lock.holds locks ~owner:1 r))

let test_lock_reentrant () =
  let locks = Lock.create () in
  let r = Lock.Rel "t" in
  Meter.reset ();
  ignore (Lock.acquire locks ~owner:1 r Lock.X);
  ignore (Lock.acquire locks ~owner:1 r Lock.X);
  ignore (Lock.acquire locks ~owner:1 r Lock.S);
  Alcotest.(check int) "one metered acquisition" 1 (Meter.get "get_lock");
  Lock.release_all locks ~owner:1;
  Alcotest.(check int) "one release" 1 (Meter.get "release_lock")

let test_deadlock_detection () =
  let locks = Lock.create () in
  let ra = Lock.Rec ("t", 1) and rb = Lock.Rec ("t", 2) in
  ignore (Lock.acquire locks ~owner:1 ra Lock.X);
  ignore (Lock.acquire locks ~owner:2 rb Lock.X);
  (match Lock.acquire locks ~owner:1 rb Lock.X with
  | Lock.Blocked [ 2 ] -> ()
  | _ -> Alcotest.fail "expected block");
  match Lock.acquire locks ~owner:2 ra Lock.X with
  | Lock.Deadlock _ -> ()
  | _ -> Alcotest.fail "cycle not detected"

(* Abort replay over a nastier change mix than [test_abort_undoes_everything]:
   chained updates to one row, a delete of a row inserted in the same
   transaction, and an update followed by delete of a pre-existing row.  The
   undo must walk the log backwards through every image chain. *)
let test_abort_replays_mixed_log () =
  let ((_, tb, _, _) as env) = setup () in
  let t0 = begin_ env in
  ignore (Transaction.exec t0 "insert into t values ('a',1),('b',2)");
  Transaction.commit t0;
  Transaction.cleanup t0;
  let before = contents tb in
  let txn = begin_ env in
  ignore (Transaction.exec txn "update t set v = 10 where k = 'a'");
  ignore (Transaction.exec txn "update t set v = 11 where k = 'a'");
  ignore (Transaction.exec txn "update t set v = 12 where k = 'a'");
  ignore (Transaction.exec txn "insert into t values ('c', 3)");
  ignore (Transaction.exec txn "update t set v = 30 where k = 'c'");
  ignore (Transaction.exec txn "delete from t where k = 'c'");
  ignore (Transaction.exec txn "update t set v = 20 where k = 'b'");
  ignore (Transaction.exec txn "delete from t where k = 'b'");
  Transaction.abort txn;
  Alcotest.(check (list (pair string int)))
    "mixed log fully undone"
    (List.sort compare before)
    (List.sort compare (contents tb));
  (* the table must stay usable: the undone rows are live, not ghosts *)
  let t2 = begin_ env in
  ignore (Transaction.exec t2 "update t set v = 100 where k = 'b'");
  Transaction.commit t2;
  Transaction.cleanup t2;
  Alcotest.(check (list (pair string int)))
    "post-abort update lands"
    [ ("a", 1); ("b", 100) ]
    (List.sort compare (contents tb))

(* The victim set returned with [Deadlock] names exactly the owners on the
   would-be cycle — the scheduler needs it to pick whom to abort. *)
let test_deadlock_victim_set () =
  let locks = Lock.create () in
  let ra = Lock.Rec ("t", 1)
  and rb = Lock.Rec ("t", 2)
  and rc = Lock.Rec ("t", 3) in
  (* three-party cycle: 1 waits on 2 waits on 3 waits on 1 *)
  ignore (Lock.acquire locks ~owner:1 ra Lock.X);
  ignore (Lock.acquire locks ~owner:2 rb Lock.X);
  ignore (Lock.acquire locks ~owner:3 rc Lock.X);
  (match Lock.acquire locks ~owner:1 rb Lock.X with
  | Lock.Blocked [ 2 ] -> ()
  | _ -> Alcotest.fail "1 should block on 2");
  (match Lock.acquire locks ~owner:2 rc Lock.X with
  | Lock.Blocked [ 3 ] -> ()
  | _ -> Alcotest.fail "2 should block on 3");
  (match Lock.acquire locks ~owner:3 ra Lock.X with
  | Lock.Deadlock victims ->
    Alcotest.(check (list int)) "victims are the cycle's blockers" [ 1 ] victims
  | _ -> Alcotest.fail "three-party cycle not detected");
  (* an independent owner is untouched by the refusal *)
  Alcotest.(check bool) "bystander still granted" true
    (Lock.acquire locks ~owner:4 (Lock.Rec ("t", 9)) Lock.X = Lock.Granted)

let test_lock_conflict_surfaces () =
  let ((_, _, _, _) as env) = setup () in
  let t1 = begin_ env in
  let t2 = begin_ env in
  ignore (Transaction.exec t1 "insert into t values ('a', 1)");
  ignore (Transaction.exec t1 "update t set v = 2 where k = 'a'");
  (match Transaction.exec t2 "update t set v = 3 where k = 'a'" with
  | exception Transaction.Lock_conflict { blockers; deadlock = false; _ } ->
    Alcotest.(check (list int)) "blocked by t1" [ Transaction.txid t1 ] blockers
  | _ -> Alcotest.fail "conflicting update should raise");
  Transaction.commit t1;
  Transaction.cleanup t1;
  Transaction.abort t2

let test_query_inside_txn_takes_shared_lock () =
  let ((_, _, locks, _) as env) = setup () in
  let txn = begin_ env in
  ignore (Transaction.exec txn "insert into t values ('a', 1)");
  ignore (Transaction.query txn "select k from t");
  Alcotest.(check bool) "table S lock held" true
    (List.mem_assoc (Transaction.txid txn) (Lock.holders locks (Lock.Rel "t")));
  Transaction.commit txn;
  Transaction.cleanup txn;
  Alcotest.(check (list (pair int Alcotest.reject))) "released" []
    (Lock.holders locks (Lock.Rel "t"))

let test_double_commit_rejected () =
  let env = setup () in
  let txn = begin_ env in
  Transaction.commit txn;
  match Transaction.commit txn with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double commit accepted"

let test_meter_canonical_counters () =
  let env = setup () in
  let t0 = begin_ env in
  ignore (Transaction.exec t0 "insert into t values ('a', 1)");
  Transaction.commit t0;
  Transaction.cleanup t0;
  Meter.reset ();
  let txn = begin_ env in
  ignore (Transaction.exec txn "update t set v = 2 where k = 'a'");
  Transaction.commit txn;
  Transaction.cleanup txn;
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int) name expected (Meter.get name))
    [
      ("begin_transaction", 1); ("commit_transaction", 1); ("open_cursor", 1);
      ("fetch_cursor", 1); ("update_cursor", 1); ("close_cursor", 1);
      ("release_lock", 2) (* record X + table lock *);
    ]

(* Deferred release (multi-server commit): inside a defer window a commit's
   release_all keeps the locks physically held (a "zombie holder" standing
   for a transaction whose simulated service window is still open) while
   metering the release at commit time; the later flush frees them without
   metering anything. *)
let test_deferred_release_zombie () =
  let locks = Lock.create () in
  let r = Lock.Rec ("t", 1) in
  Meter.reset ();
  Lock.begin_defer locks;
  ignore (Lock.acquire locks ~owner:1 r Lock.X);
  Lock.release_all locks ~owner:1;
  Alcotest.(check int) "release metered at commit" 1 (Meter.get "release_lock");
  (match Lock.acquire locks ~owner:2 r Lock.X with
  | Lock.Blocked [ 1 ] -> ()
  | _ -> Alcotest.fail "zombie holder must still block");
  let owners = Lock.end_defer locks in
  Alcotest.(check (list int)) "deferred owners" [ 1 ] owners;
  List.iter (fun o -> Lock.flush locks ~owner:o) owners;
  Alcotest.(check int) "flush unmetered" 1 (Meter.get "release_lock");
  Alcotest.(check bool) "free after flush" true
    (Lock.acquire locks ~owner:2 r Lock.X = Lock.Granted)

(* An abort inside a defer window must release physically at once: its undo
   already took effect in real execution order, so no zombie may outlive
   it. *)
let test_abort_releases_inside_defer () =
  let locks = Lock.create () in
  let r = Lock.Rec ("t", 1) in
  Lock.begin_defer locks;
  ignore (Lock.acquire locks ~owner:1 r Lock.X);
  Lock.release_now locks ~owner:1;
  Alcotest.(check bool) "released immediately" true
    (Lock.acquire locks ~owner:2 r Lock.X = Lock.Granted);
  Alcotest.(check (list int)) "not a deferred owner" []
    (List.filter (fun o -> o = 1) (Lock.end_defer locks))

(* Upgrade under contention: a reader upgrading to X waits for the other
   reader (here a zombie holder) and is granted once it flushes; two
   readers both upgrading form an upgrade cycle the second must lose. *)
let test_upgrade_under_contention () =
  let locks = Lock.create () in
  let r = Lock.Rec ("t", 7) in
  Lock.begin_defer locks;
  ignore (Lock.acquire locks ~owner:1 r Lock.S);
  Lock.release_all locks ~owner:1;
  ignore (Lock.end_defer locks);
  (* owner 2 shares with the zombie, then tries to upgrade *)
  ignore (Lock.acquire locks ~owner:2 r Lock.S);
  (match Lock.acquire locks ~owner:2 r Lock.X with
  | Lock.Blocked [ 1 ] -> ()
  | _ -> Alcotest.fail "upgrade must wait for the zombie reader");
  Lock.flush locks ~owner:1;
  Alcotest.(check bool) "upgrade granted after flush" true
    (Lock.acquire locks ~owner:2 r Lock.X = Lock.Granted);
  Lock.release_now locks ~owner:2;
  (* dual-upgrade cycle: both hold S, both want X *)
  ignore (Lock.acquire locks ~owner:3 r Lock.S);
  ignore (Lock.acquire locks ~owner:4 r Lock.S);
  (match Lock.acquire locks ~owner:3 r Lock.X with
  | Lock.Blocked [ 4 ] -> ()
  | _ -> Alcotest.fail "first upgrader should wait");
  match Lock.acquire locks ~owner:4 r Lock.X with
  | Lock.Deadlock _ -> ()
  | _ -> Alcotest.fail "second upgrader must be refused (upgrade cycle)"

let suite =
  [
    ( "txn",
      [
        Alcotest.test_case "commit time" `Quick test_commit_time;
        Alcotest.test_case "abort undoes all changes" `Quick test_abort_undoes_everything;
        Alcotest.test_case "log execute_order + image chains" `Quick test_log_execute_order;
        Alcotest.test_case "pre-images pinned until cleanup" `Quick
          test_pre_images_pinned_until_cleanup;
        Alcotest.test_case "lock sharing, blocking, upgrade" `Quick
          test_locks_block_and_upgrade;
        Alcotest.test_case "reentrant locks unmetered" `Quick test_lock_reentrant;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "abort replays mixed log" `Quick
          test_abort_replays_mixed_log;
        Alcotest.test_case "deadlock victim set" `Quick test_deadlock_victim_set;
        Alcotest.test_case "Lock_conflict surfaces" `Quick test_lock_conflict_surfaces;
        Alcotest.test_case "queries take shared locks" `Quick
          test_query_inside_txn_takes_shared_lock;
        Alcotest.test_case "double commit rejected" `Quick test_double_commit_rejected;
        Alcotest.test_case "canonical counters" `Quick test_meter_canonical_counters;
        Alcotest.test_case "deferred release keeps zombie holders" `Quick
          test_deferred_release_zombie;
        Alcotest.test_case "abort releases inside defer window" `Quick
          test_abort_releases_inside_defer;
        Alcotest.test_case "lock upgrade under contention" `Quick
          test_upgrade_under_contention;
      ] );
  ]
