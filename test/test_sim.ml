open Strip_relational
open Strip_txn
open Strip_sim

let test_cost_model_simple_update () =
  Alcotest.(check (float 1e-9)) "the paper's 172 us" 172.0
    (Cost_model.simple_update_us Cost_model.default);
  Alcotest.(check int) "table-1 has ten rows" 10
    (List.length (Cost_model.table1_entries Cost_model.default))

let test_cost_model_charge_and_override () =
  let m = Cost_model.default in
  Alcotest.(check (float 1e-9)) "charge"
    ((2.0 *. Cost_model.cost_us m "get_lock") +. Cost_model.cost_us m "bs_eval")
    (Cost_model.charge m [ ("get_lock", 2); ("bs_eval", 1) ]);
  let m' = Cost_model.override m [ ("bs_eval", 1.0) ] in
  Alcotest.(check (float 1e-9)) "override" 1.0 (Cost_model.cost_us m' "bs_eval");
  Alcotest.(check (float 1e-9)) "original untouched"
    (Cost_model.cost_us m "bs_eval")
    (Cost_model.cost_us Cost_model.default "bs_eval");
  ignore (Cost_model.cost_us m "definitely_not_a_counter_xyz");
  Alcotest.(check bool) "unknown counter remembered" true
    (List.mem "definitely_not_a_counter_xyz" (Cost_model.unknown_counters ()))

let mk_engine () =
  let clock = Clock.create () in
  (clock, Engine.create ~clock ())

let task ?(klass = Task.Recompute) ~at body =
  Task.create ~klass ~func_name:"t" ~release_time:at ~created_at:at body

let test_release_and_virtual_time () =
  let clock, eng = mk_engine () in
  let seen = ref [] in
  Engine.submit eng (task ~at:2.0 (fun _ -> seen := Clock.now clock :: !seen));
  Engine.submit eng (task ~at:1.0 (fun _ -> seen := Clock.now clock :: !seen));
  Alcotest.(check int) "pending" 2 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check (list (float 1e-6))) "released in time order" [ 1.0; 2.0 ]
    (List.rev !seen);
  Alcotest.(check int) "drained" 0 (Engine.pending eng)

let test_service_time_from_meter () =
  let _, eng = mk_engine () in
  let t =
    task ~at:0.0 (fun _ ->
        Meter.tick "bs_eval";
        Meter.tick_n "fetch_cursor" 3)
  in
  Engine.submit eng t;
  Engine.run eng;
  let m = Cost_model.default in
  let expected =
    Cost_model.cost_us m "bs_eval"
    +. (3.0 *. Cost_model.cost_us m "fetch_cursor")
    +. Cost_model.cost_us m "begin_task"
    +. Cost_model.cost_us m "end_task"
    +. Cost_model.cost_us m "task_dispatch"
  in
  (* allow the tiny congestion surcharge of a single dispatch *)
  Alcotest.(check (float 0.01)) "charged" expected t.Task.service_us

let test_priority_dispatch () =
  let _, eng = mk_engine () in
  let order = ref [] in
  let log name = fun _ -> order := name :: !order in
  Engine.submit eng
    (Task.create ~klass:Task.Recompute ~func_name:"rc" ~release_time:1.0
       ~created_at:0.0 (log "rc"));
  Engine.submit eng
    (Task.create ~klass:Task.Update ~func_name:"up" ~release_time:1.0
       ~created_at:0.0 (log "up"));
  Engine.run eng;
  Alcotest.(check (list string)) "update first at equal release" [ "up"; "rc" ]
    (List.rev !order)

let test_cpu_serialization () =
  (* Two tasks released together: the second starts after the first's
     service time (single CPU). *)
  let _, eng = mk_engine () in
  let heavy _ = Meter.tick_n "bs_eval" 1000 in
  let t1 = task ~at:0.0 heavy in
  let t2 = task ~at:0.0 (fun _ -> ()) in
  Engine.submit eng t1;
  Engine.submit eng t2;
  Engine.run eng;
  Alcotest.(check bool) "t2 queued behind t1" true
    (t2.Task.dispatched_at >= t1.Task.service_us *. 1e-6 -. 1e-9);
  let stats = Engine.stats eng in
  Alcotest.(check int) "two recomputes" 2 (Stats.n_recompute stats);
  Alcotest.(check bool) "busy accumulated" true
    (Stats.busy_us stats >= t1.Task.service_us)

let test_context_switch_charge () =
  let _, eng = mk_engine () in
  Engine.set_arrival_profile eng [| 0.0; 0.05; 0.1; 0.9 |];
  (* a recompute long enough (~0.5 s) to span the arrivals at 0.05 and 0.1 *)
  let t = task ~at:0.0 (fun _ -> Meter.tick_n "bs_eval" 2000) in
  Engine.submit eng t;
  Engine.run eng;
  Alcotest.(check int) "two preemptions charged" 2
    (Stats.context_switches (Engine.stats eng));
  (* updates are never charged context switches *)
  let _, eng2 = mk_engine () in
  Engine.set_arrival_profile eng2 [| 0.05 |];
  Engine.submit eng2 (task ~klass:Task.Update ~at:0.0 (fun _ -> Meter.tick_n "bs_eval" 2000));
  Engine.run eng2;
  Alcotest.(check int) "no charge for updates" 0
    (Stats.context_switches (Engine.stats eng2))

let test_congestion_surcharge () =
  (* 200 tiny recomputes released in one second: later dispatches carry a
     quadratic congestion surcharge, so the mean exceeds an uncongested
     task's cost. *)
  let _, eng = mk_engine () in
  for i = 0 to 199 do
    Engine.submit eng (task ~at:(0.005 *. float_of_int i) (fun _ -> ()))
  done;
  Engine.run eng;
  let mean = Stats.mean_service_us (Engine.stats eng) Task.Recompute in
  let base =
    Cost_model.(
      cost_us default "begin_task" +. cost_us default "end_task"
      +. cost_us default "task_dispatch")
  in
  Alcotest.(check bool) "surcharge visible" true (mean > base +. 10.0)

let test_until_stops_releases () =
  let _, eng = mk_engine () in
  let ran = ref 0 in
  Engine.submit eng (task ~at:1.0 (fun _ -> incr ran));
  Engine.submit eng (task ~at:100.0 (fun _ -> incr ran));
  Engine.run ~until:10.0 eng;
  Alcotest.(check int) "only the due task ran" 1 !ran;
  Alcotest.(check int) "late task still pending" 1 (Engine.pending eng)

let test_stats_utilization () =
  let s = Stats.create () in
  Stats.record_task s ~klass:Task.Update ~service_us:2e6 ~queue_us:0.0;
  Stats.record_task s ~klass:Task.Recompute ~service_us:1e6 ~queue_us:5e5;
  Alcotest.(check (float 1e-9)) "utilization" 0.3 (Stats.utilization s ~duration_s:10.0);
  Alcotest.(check (float 1e-9)) "mean recompute" 1e6
    (Stats.mean_service_us s Task.Recompute);
  Alcotest.(check (float 1e-9)) "mean queue" 5e5 (Stats.mean_queue_us s Task.Recompute);
  Alcotest.(check int) "n_r" 1 (Stats.n_recompute s)

(* ---- multi-server execution with lock arbitration ---- *)

let mk_locked_db () =
  let cat = Catalog.create () in
  ignore (Sql_exec.exec_string cat ~env:[] "create table t (k int, v float)");
  ignore (Sql_exec.exec_string cat ~env:[] "insert into t values (3, 0.0)");
  cat

let read_v cat =
  match Sql_exec.exec_string cat ~env:[] "select v from t where k = 3" with
  | Sql_exec.Rows r -> (
    match Query.rows r with
    | [ [| Value.Float f |] ] -> f
    | [ [| Value.Int i |] ] -> float_of_int i
    | _ -> nan)
  | _ -> nan

(* A task that increments the contended row inside a real transaction,
   logging its task id only when the commit sticks (a parked attempt is
   undone and re-run, so it must not appear twice). *)
let writer ~cat ~locks ~clock ~log () =
  task ~at:0.0 (fun tk ->
      let txn = Transaction.begin_ ~cat ~locks ~clock () in
      (try
         ignore (Transaction.exec txn "update t set v = v + 1.0 where k = 3");
         Transaction.commit txn
       with e ->
         if Transaction.status txn = Transaction.Active then
           Transaction.abort txn;
         raise e);
      log := tk.Task.task_id :: !log)

let test_multi_server_overlap () =
  Task.reset_ids ();
  let clock = Clock.create () in
  let eng = Engine.create ~clock ~servers:2 () in
  let heavy _ = Meter.tick_n "bs_eval" 1000 in
  let t1 = task ~at:0.0 heavy in
  let t2 = task ~at:0.0 heavy in
  Engine.submit eng t1;
  Engine.submit eng t2;
  Engine.run eng;
  (* with two servers both dispatch at t=0 instead of serializing *)
  Alcotest.(check (float 1e-9)) "t1 starts at 0" 0.0 t1.Task.dispatched_at;
  Alcotest.(check (float 1e-9)) "t2 overlaps t1" 0.0 t2.Task.dispatched_at;
  let s = Engine.stats eng in
  Alcotest.(check int) "two servers" 2 (Stats.num_servers s);
  Alcotest.(check int) "one task on server 0" 1 (Stats.server_tasks s 0);
  Alcotest.(check int) "one task on server 1" 1 (Stats.server_tasks s 1)

let test_park_wake_fifo () =
  Task.reset_ids ();
  let cat = mk_locked_db () in
  let clock = Clock.create () in
  let locks = Lock.create () in
  let eng = Engine.create ~clock ~locks ~servers:2 () in
  let log = ref [] in
  let ids =
    List.init 4 (fun _ ->
        let t = writer ~cat ~locks ~clock ~log () in
        Engine.submit eng t;
        t.Task.task_id)
  in
  Engine.run eng;
  (* all conflicting writers park on the zombie holder and are woken FIFO
     by task id, so the commit order is exactly submission order *)
  Alcotest.(check (list int)) "commit order is FIFO by task id" ids
    (List.rev !log);
  (* 3 waiters wake behind txn 1, then 2 behind txn 2, then 1 behind txn 3 *)
  Alcotest.(check int) "wait episodes" 6 (Stats.n_lock_waits (Engine.stats eng));
  Alcotest.(check int) "no task left parked" 0 (Engine.parked_count eng);
  Alcotest.(check (float 1e-9)) "all four increments applied" 4.0 (read_v cat)

let test_lock_timeout_retry () =
  Task.reset_ids ();
  let cat = mk_locked_db () in
  let clock = Clock.create () in
  let locks = Lock.create () in
  let eng =
    Engine.create ~clock ~locks ~servers:2 ~lock_timeout_s:1e-9
      ~retry:Engine.default_retry ()
  in
  let log = ref [] in
  for _ = 1 to 3 do
    Engine.submit eng (writer ~cat ~locks ~clock ~log ())
  done;
  Engine.run eng;
  let s = Engine.stats eng in
  (* the third writer re-blocks after its wake; with a sub-microsecond
     timeout that is presumed deadlock and routed to retry/backoff *)
  Alcotest.(check bool) "presumed deadlock recorded" true
    (Stats.n_lock_timeouts s >= 1);
  Alcotest.(check bool) "timed-out task retried" true (Stats.n_retries s >= 1);
  Alcotest.(check int) "nothing dead-lettered" 0
    (List.length (Engine.dead_letters eng));
  Alcotest.(check (float 1e-9)) "still converges to three increments" 3.0
    (read_v cat)

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "cost model: 172 us canonical update" `Quick
          test_cost_model_simple_update;
        Alcotest.test_case "cost model: charge/override/unknown" `Quick
          test_cost_model_charge_and_override;
        Alcotest.test_case "delayed release + virtual time" `Quick
          test_release_and_virtual_time;
        Alcotest.test_case "service time from meter deltas" `Quick
          test_service_time_from_meter;
        Alcotest.test_case "updates dispatch before recomputes" `Quick
          test_priority_dispatch;
        Alcotest.test_case "single-CPU serialization" `Quick test_cpu_serialization;
        Alcotest.test_case "context-switch surcharge" `Quick test_context_switch_charge;
        Alcotest.test_case "congestion surcharge" `Quick test_congestion_surcharge;
        Alcotest.test_case "run ~until" `Quick test_until_stops_releases;
        Alcotest.test_case "stats" `Quick test_stats_utilization;
        Alcotest.test_case "multi-server: overlapping dispatch" `Quick
          test_multi_server_overlap;
        Alcotest.test_case "multi-server: park/wake FIFO by task id" `Quick
          test_park_wake_fifo;
        Alcotest.test_case "multi-server: lock timeout routes to retry" `Quick
          test_lock_timeout_retry;
      ] );
  ]
