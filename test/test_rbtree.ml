open Strip_relational

let cmp = Int.compare

module IMap = Map.Make (Int)

let check_inv t =
  match Rbtree.check_invariants ~cmp t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "red-black invariant broken: %s" msg

let test_basics () =
  let t = Rbtree.empty in
  Alcotest.(check bool) "empty" true (Rbtree.is_empty t);
  let t = Rbtree.insert ~cmp 2 "two" t in
  let t = Rbtree.insert ~cmp 1 "one" t in
  let t = Rbtree.insert ~cmp 3 "three" t in
  check_inv t;
  Alcotest.(check (option string)) "find" (Some "two") (Rbtree.find ~cmp 2 t);
  Alcotest.(check int) "cardinal" 3 (Rbtree.cardinal t);
  let t = Rbtree.insert ~cmp 2 "TWO" t in
  Alcotest.(check (option string)) "replace" (Some "TWO") (Rbtree.find ~cmp 2 t);
  Alcotest.(check int) "no dup" 3 (Rbtree.cardinal t);
  let t = Rbtree.remove ~cmp 2 t in
  check_inv t;
  Alcotest.(check (option string)) "removed" None (Rbtree.find ~cmp 2 t);
  Alcotest.(check int) "cardinal after remove" 2 (Rbtree.cardinal t)

let test_remove_absent () =
  let t = Rbtree.insert ~cmp 1 "x" Rbtree.empty in
  let t' = Rbtree.remove ~cmp 99 t in
  check_inv t';
  Alcotest.(check int) "unchanged" 1 (Rbtree.cardinal t')

let test_inorder_and_minmax () =
  let t =
    List.fold_left
      (fun t k -> Rbtree.insert ~cmp k (k * 10) t)
      Rbtree.empty [ 5; 1; 9; 3; 7 ]
  in
  Alcotest.(check (list (pair int int)))
    "sorted assoc"
    [ (1, 10); (3, 30); (5, 50); (7, 70); (9, 90) ]
    (Rbtree.to_list t);
  Alcotest.(check (option (pair int int))) "min" (Some (1, 10)) (Rbtree.min_binding t);
  Alcotest.(check (option (pair int int))) "max" (Some (9, 90)) (Rbtree.max_binding t)

let test_range () =
  let t =
    List.fold_left
      (fun t k -> Rbtree.insert ~cmp k k t)
      Rbtree.empty
      (List.init 20 (fun i -> i))
  in
  let collect ?lo ?hi () =
    let acc = ref [] in
    Rbtree.range ~cmp ?lo ?hi (fun k _ -> acc := k :: !acc) t;
    List.rev !acc
  in
  Alcotest.(check (list int)) "inclusive bounds" [ 5; 6; 7 ] (collect ~lo:5 ~hi:7 ());
  Alcotest.(check (list int)) "open low" [ 0; 1; 2 ] (collect ~hi:2 ());
  Alcotest.(check (list int)) "open high" [ 18; 19 ] (collect ~lo:18 ());
  Alcotest.(check (list int)) "empty range" [] (collect ~lo:7 ~hi:5 ())

let test_update () =
  let t = Rbtree.insert ~cmp 1 10 Rbtree.empty in
  let t = Rbtree.update ~cmp 1 (Option.map (fun v -> v + 1)) t in
  Alcotest.(check (option int)) "bump" (Some 11) (Rbtree.find ~cmp 1 t);
  let t = Rbtree.update ~cmp 1 (fun _ -> None) t in
  Alcotest.(check (option int)) "delete via update" None (Rbtree.find ~cmp 1 t);
  let t = Rbtree.update ~cmp 9 (fun _ -> Some 99) t in
  Alcotest.(check (option int)) "insert via update" (Some 99) (Rbtree.find ~cmp 9 t)

(* Model-based property: a random op sequence agrees with Map, and the
   red-black invariants hold after every operation. *)
let prop_model =
  let gen_ops =
    QCheck2.Gen.(list_size (int_range 1 200) (pair bool (int_range 0 50)))
  in
  QCheck2.Test.make ~name:"model-based vs Map + invariants" ~count:200 gen_ops
    (fun ops ->
      let t = ref Rbtree.empty and m = ref IMap.empty in
      List.for_all
        (fun (ins, k) ->
          if ins then begin
            t := Rbtree.insert ~cmp k k !t;
            m := IMap.add k k !m
          end
          else begin
            t := Rbtree.remove ~cmp k !t;
            m := IMap.remove k !m
          end;
          Result.is_ok (Rbtree.check_invariants ~cmp !t)
          && Rbtree.to_list !t = IMap.bindings !m)
        ops)

let prop_fold_matches_iter =
  QCheck2.Test.make ~name:"fold and iter agree" ~count:100
    QCheck2.Gen.(list_size (int_range 0 60) (int_range 0 100))
    (fun keys ->
      let t =
        List.fold_left (fun t k -> Rbtree.insert ~cmp k k t) Rbtree.empty keys
      in
      let via_iter = ref [] in
      Rbtree.iter (fun k _ -> via_iter := k :: !via_iter) t;
      let via_fold = Rbtree.fold (fun k _ acc -> k :: acc) t [] in
      !via_iter = via_fold)

let suite =
  [
    ( "rbtree",
      [
        Alcotest.test_case "insert/find/remove" `Quick test_basics;
        Alcotest.test_case "remove absent key" `Quick test_remove_absent;
        Alcotest.test_case "in-order traversal, min/max" `Quick test_inorder_and_minmax;
        Alcotest.test_case "range scans" `Quick test_range;
        Alcotest.test_case "update" `Quick test_update;
        QCheck_alcotest.to_alcotest prop_model;
        QCheck_alcotest.to_alcotest prop_fold_matches_iter;
      ] );
  ]
