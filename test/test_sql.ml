open Strip_relational

(* ------------------------------------------------------------------ *)
(* Lexer.                                                               *)

let test_lexer_tokens () =
  let toks = Sql_lexer.tokenize "select a.b, 'it''s' <> 1.5e2 += -- note\n ;" in
  let strs = Array.to_list (Array.map Sql_lexer.token_to_string toks) in
  Alcotest.(check (list string))
    "tokens"
    [ "select"; "a"; "."; "b"; ","; "'it's'"; "<>"; "150."; "+="; ";"; "<eof>" ]
    strs

let test_lexer_errors () =
  (match Sql_lexer.tokenize "'unterminated" with
  | exception Sql_lexer.Lex_error (_, 0) -> ()
  | _ -> Alcotest.fail "unterminated string accepted");
  match Sql_lexer.tokenize "a ? b" with
  | exception Sql_lexer.Lex_error (_, 2) -> ()
  | _ -> Alcotest.fail "bad character accepted"

(* ------------------------------------------------------------------ *)
(* Parser.                                                              *)

let test_parse_select_shape () =
  let ast =
    Sql_parser.parse_select_string
      "select comp, sum(w * p) as total from t1, t2 x where t1.k = x.k and p \
       > 2 group by comp having total > 0 order by total desc limit 3"
  in
  Alcotest.(check int) "items" 2 (List.length ast.Sql_parser.items);
  Alcotest.(check (list string))
    "from aliases" [ "t1"; "x" ]
    (List.map (fun (r : Sql_parser.table_ref) -> r.alias) ast.Sql_parser.from);
  Alcotest.(check bool) "where" true (ast.Sql_parser.where <> None);
  Alcotest.(check int) "group by" 1 (List.length ast.Sql_parser.group_by);
  Alcotest.(check bool) "having" true (ast.Sql_parser.having <> None);
  Alcotest.(check int) "order" 1 (List.length ast.Sql_parser.order_by);
  Alcotest.(check (option int)) "limit" (Some 3) ast.Sql_parser.limit

let test_parse_paper_groupby_spelling () =
  (* Figure 6 writes "groupby" as one word. *)
  let ast =
    Sql_parser.parse_select_string
      "select comp, sum((new_price - old_price) * weight) as diff from \
       matches groupby comp"
  in
  Alcotest.(check int) "groupby parsed" 1 (List.length ast.Sql_parser.group_by)

let test_parse_statements_script () =
  let stmts =
    Sql_parser.parse_statements
      "create table t (a int, b float); insert into t values (1, 2.0); \
       update t set b += 1.0 where a = 1; delete from t where a = 2; select \
       * from t"
  in
  Alcotest.(check int) "five statements" 5 (List.length stmts);
  match stmts with
  | [ Sql_parser.Create_table { cols; _ }; Sql_parser.Insert _;
      Sql_parser.Update { sets = [ (_, Sql_parser.Increment, _) ]; _ };
      Sql_parser.Delete _; Sql_parser.Select _ ] ->
    Alcotest.(check int) "cols" 2 (List.length cols)
  | _ -> Alcotest.fail "unexpected statement shapes"

let test_parse_errors () =
  List.iter
    (fun sql ->
      match Sql_parser.parse_statement sql with
      | exception Sql_parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted: %s" sql)
    [
      "select from t";
      "create table t (a blob)";
      "insert into t (1)";
      "update t set";
      "select a from";
      "select a from t limit x";
      "select a from t; extra";
    ]

(* ------------------------------------------------------------------ *)
(* End-to-end execution.                                                *)

let db () = Catalog.create ()

let exec cat s = Sql_exec.exec_string cat ~env:[] s

let rows cat s =
  match exec cat s with
  | Sql_exec.Rows r ->
    List.map
      (fun row -> Array.to_list (Array.map Value.to_string row))
      (Query.rows r)
  | _ -> Alcotest.fail "expected rows"

let count_of = function
  | Sql_exec.Count n -> n
  | _ -> Alcotest.fail "expected a count"

let test_exec_crud () =
  let cat = db () in
  ignore (exec cat "create table t (k string, v int)");
  ignore (exec cat "create index t_k on t (k)");
  Alcotest.(check int) "insert" 3
    (count_of (exec cat "insert into t values ('a',1),('b',2),('c',3)"));
  Alcotest.(check int) "indexed update" 1
    (count_of (exec cat "update t set v = 10 where k = 'a'"));
  Alcotest.(check int) "scan update" 2
    (count_of (exec cat "update t set v += 1 where v < 5"));
  Alcotest.(check int) "delete" 1 (count_of (exec cat "delete from t where k = 'b'"));
  Alcotest.(check (list (list string)))
    "final" [ [ "a"; "10" ]; [ "c"; "4" ] ]
    (rows cat "select k, v from t order by k")

let test_exec_uses_index_path () =
  let cat = db () in
  ignore (exec cat "create table t (k string, v int)");
  ignore (exec cat "create index t_k on t (k)");
  for i = 0 to 99 do
    ignore
      (exec cat (Printf.sprintf "insert into t values ('k%d', %d)" i i))
  done;
  Meter.reset ();
  ignore (exec cat "update t set v = 0 where k = 'k50'");
  (* index path: one probe, one fetch — not a 100-row scan *)
  Alcotest.(check int) "one fetch" 1 (Meter.get "fetch_cursor");
  Alcotest.(check int) "one probe" 1 (Meter.get "index_probe");
  Meter.reset ();
  ignore (exec cat "update t set v = 0 where v = 50");
  Alcotest.(check int) "unindexed predicate scans" 100 (Meter.get "fetch_cursor")

let test_insert_column_list () =
  let cat = db () in
  ignore (exec cat "create table t (a int, b string, c float)");
  ignore (exec cat "insert into t (c, a) values (1.5, 7)");
  Alcotest.(check (list (list string)))
    "reordered, missing defaults to NULL"
    [ [ "7"; "NULL"; "1.5" ] ]
    (rows cat "select * from t")

let test_create_view_materializes () =
  let cat = db () in
  ignore (exec cat "create table t (g string, x float)");
  ignore (exec cat "insert into t values ('a', 1.0), ('a', 2.0), ('b', 5.0)");
  let captured = ref None in
  ignore
    (Sql_exec.exec ~on_view:(fun name ast -> captured := Some (name, ast)) cat
       ~env:[]
       (Sql_parser.parse_statement
          "create view v as select g, sum(x) as s from t group by g"));
  Alcotest.(check (list (list string)))
    "materialized" [ [ "a"; "3.0" ]; [ "b"; "5.0" ] ]
    (rows cat "select g, s from v order by g");
  Alcotest.(check bool) "definition captured" true
    (match !captured with Some ("v", _) -> true | _ -> false)

let test_join_order_heuristic_temp_first () =
  (* The planner joins small temporaries before indexed standard tables so
     the index path applies; mimic a transition-table query. *)
  let cat = db () in
  ignore (exec cat "create table big (sym string, grp string)");
  ignore (exec cat "create index big_sym on big (sym)");
  for i = 0 to 499 do
    ignore
      (exec cat
         (Printf.sprintf "insert into big values ('s%d', 'g%d')" i (i mod 7)))
  done;
  let tiny =
    Temp_table.create_materialized ~name:"delta"
      ~schema:(Schema.of_list [ ("sym", Value.TStr) ])
  in
  Temp_table.append_values tiny [| Value.Str "s42" |];
  let env = [ ("delta", tiny) ] in
  Meter.reset ();
  let r =
    Sql_exec.query cat ~env
      "select grp from big, delta where big.sym = delta.sym"
  in
  Alcotest.(check int) "one match" 1 (Query.row_count r);
  Alcotest.(check bool) "no full scan of big" true (Meter.get "seq_row" < 10)

let test_select_star_and_qualified_star () =
  let cat = db () in
  ignore (exec cat "create table a (x int)");
  ignore (exec cat "create table b (y int)");
  ignore (exec cat "insert into a values (1)");
  ignore (exec cat "insert into b values (2)");
  Alcotest.(check (list (list string)))
    "star over join" [ [ "1"; "2" ] ]
    (rows cat "select * from a, b");
  Alcotest.(check (list (list string)))
    "qualified star" [ [ "2" ] ]
    (rows cat "select b.* from a, b")

let test_between_and_in () =
  let cat = db () in
  ignore (exec cat "create table t (k string, v int)");
  ignore
    (exec cat "insert into t values ('a',1),('b',2),('c',3),('d',4),('e',5)");
  Alcotest.(check (list (list string)))
    "between (inclusive)"
    [ [ "b" ]; [ "c" ]; [ "d" ] ]
    (rows cat "select k from t where v between 2 and 4 order by k");
  Alcotest.(check (list (list string)))
    "in list"
    [ [ "a" ]; [ "e" ] ]
    (rows cat "select k from t where k in ('a', 'e', 'zz') order by k");
  Alcotest.(check (list (list string)))
    "combined"
    [ [ "b" ] ]
    (rows cat
       "select k from t where v between 1 and 3 and k in ('b', 'd') order by k")

let test_range_cursor_via_tree_index () =
  let cat = db () in
  ignore (exec cat "create table t (k int, v int)");
  ignore (exec cat "create index t_k on t (k) using tree");
  for i = 0 to 99 do
    ignore (exec cat (Printf.sprintf "insert into t values (%d, 0)" i))
  done;
  Meter.reset ();
  Alcotest.(check int) "between hits the tree index" 11
    (count_of (exec cat "update t set v = 1 where k between 40 and 50"));
  Alcotest.(check bool) "fetched only the range" true
    (Meter.get "fetch_cursor" <= 11);
  Meter.reset ();
  Alcotest.(check int) "one-sided bound" 5
    (count_of (exec cat "update t set v = 2 where k >= 95"));
  Alcotest.(check bool) "fetched only the tail" true
    (Meter.get "fetch_cursor" <= 5);
  (* strict bounds widen to inclusive at the index; the residual predicate
     must still filter exactly *)
  Alcotest.(check int) "strict bounds exact" 9
    (count_of (exec cat "update t set v = 3 where k > 40 and k < 50"))

let test_distinct () =
  let cat = db () in
  ignore (exec cat "create table t (g string, v int)");
  ignore (exec cat "insert into t values ('a',1),('a',1),('a',2),('b',1)");
  Alcotest.(check (list (list string)))
    "distinct whole rows"
    [ [ "a"; "1" ]; [ "a"; "2" ]; [ "b"; "1" ] ]
    (rows cat "select distinct g, v from t order by g, v");
  Alcotest.(check (list (list string)))
    "distinct single column"
    [ [ "a" ]; [ "b" ] ]
    (rows cat "select distinct g from t order by g")

let test_join_on_syntax () =
  let cat = db () in
  ignore (exec cat "create table a (k string, x int)");
  ignore (exec cat "create table b (k string, y int)");
  ignore (exec cat "insert into a values ('p',1),('q',2)");
  ignore (exec cat "insert into b values ('q',20),('r',30)");
  Alcotest.(check (list (list string)))
    "join on" [ [ "q"; "2"; "20" ] ]
    (rows cat "select a.k as k, x, y from a join b on a.k = b.k");
  Alcotest.(check (list (list string)))
    "inner join + where" [ [ "q" ] ]
    (rows cat
       "select a.k as k from a inner join b on a.k = b.k where y > 10")

let test_explain_statement () =
  let cat = db () in
  ignore (exec cat "create table t (a int)");
  let lines =
    rows cat "explain select a from t where a > 1 order by a limit 5"
  in
  let text = String.concat "\n" (List.map List.hd lines) in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in plan") true (contains needle))
    [ "limit 5"; "order by"; "project"; "filter"; "scan t" ]

let test_drop_table () =
  let cat = db () in
  ignore (exec cat "create table t (a int)");
  ignore (exec cat "drop table t");
  (match exec cat "select a from t" with
  | exception Sql_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "dropped table still queryable");
  match exec cat "drop table t" with
  | exception Query.Plan_error _ -> ()
  | _ -> Alcotest.fail "double drop accepted"

let test_aggregate_rejects_nested () =
  let cat = db () in
  ignore (exec cat "create table t (x int)");
  match exec cat "select sum(x) + 1 as s from t" with
  | exception Sql_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "nested aggregate expression accepted"

(* SQL NULL semantics for aggregates: COUNT yields 0 over an empty or
   all-NULL group; SUM/AVG/MIN/MAX yield NULL (never 0/0 or a garbage
   extremum).  NULL inputs are skipped, not counted. *)
let test_aggregate_empty_and_null_groups () =
  let cat = db () in
  ignore (exec cat "create table g (k string, v int)");
  Alcotest.(check (list (list string)))
    "grand aggregate over empty table"
    [ [ "0"; "0"; "NULL"; "NULL"; "NULL"; "NULL" ] ]
    (rows cat
       "select count(*) as c, count(v) as cv, sum(v) as s, avg(v) as a, \
        min(v) as mn, max(v) as mx from g");
  ignore
    (exec cat
       "insert into g values ('a', null), ('a', null), ('b', 3), ('b', null)");
  Alcotest.(check (list (list string)))
    "all-NULL group vs mixed group"
    [
      [ "a"; "2"; "0"; "NULL"; "NULL"; "NULL"; "NULL" ];
      [ "b"; "2"; "1"; "3"; "3.0"; "3"; "3" ];
    ]
    (rows cat
       "select k, count(*) as c, count(v) as cv, sum(v) as s, avg(v) as a, \
        min(v) as mn, max(v) as mx from g group by k order by k")

(* HAVING scopes over the grouped input rows, so its aggregates must be
   rewritten onto the Group operator's output (hidden aggregate columns
   when the select list doesn't carry them). *)
let test_having_aggregate_scoping () =
  let cat = db () in
  ignore (exec cat "create table h (sym string, n int, p float)");
  ignore
    (exec cat
       "insert into h values ('A', 1, 1.0), ('A', 2, 2.0), ('B', -1, 3.0), \
        ('B', -2, 4.0), ('C', 5, 5.0)");
  Alcotest.(check (list (list string)))
    "aggregate repeated from select list"
    [ [ "A"; "3" ]; [ "C"; "5" ] ]
    (rows cat
       "select sym, sum(n) as total from h group by sym having sum(n) > 0 \
        order by sym");
  (* aggregates absent from the select list become hidden columns and are
     projected away again *)
  Alcotest.(check (list (list string)))
    "hidden aggregates"
    [ [ "A" ] ]
    (rows cat
       "select sym from h group by sym having sum(n) > 0 and count(*) >= 2");
  Alcotest.(check (list (list string)))
    "alias reference"
    [ [ "A"; "3" ]; [ "C"; "5" ] ]
    (rows cat
       "select sym, sum(n) as t from h group by sym having t > 0 order by sym");
  Alcotest.(check (list (list string)))
    "arithmetic over two hidden aggregates"
    [ [ "A"; "1.5" ]; [ "B"; "3.5" ] ]
    (rows cat
       "select sym, avg(p) as ap from h group by sym having max(p) - min(p) \
        > 0.5 order by sym")

let suite =
  [
    ( "sql",
      [
        Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
        Alcotest.test_case "select AST shape" `Quick test_parse_select_shape;
        Alcotest.test_case "paper 'groupby' spelling" `Quick
          test_parse_paper_groupby_spelling;
        Alcotest.test_case "script parsing" `Quick test_parse_statements_script;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "CRUD end to end" `Quick test_exec_crud;
        Alcotest.test_case "cursor path picks indexes" `Quick test_exec_uses_index_path;
        Alcotest.test_case "insert column list" `Quick test_insert_column_list;
        Alcotest.test_case "create view materializes" `Quick test_create_view_materializes;
        Alcotest.test_case "join order: temporaries first" `Quick
          test_join_order_heuristic_temp_first;
        Alcotest.test_case "star expansion" `Quick test_select_star_and_qualified_star;
        Alcotest.test_case "between / in" `Quick test_between_and_in;
        Alcotest.test_case "range cursor via tree index" `Quick
          test_range_cursor_via_tree_index;
        Alcotest.test_case "select distinct" `Quick test_distinct;
        Alcotest.test_case "join ... on syntax" `Quick test_join_on_syntax;
        Alcotest.test_case "explain" `Quick test_explain_statement;
        Alcotest.test_case "drop table" `Quick test_drop_table;
        Alcotest.test_case "nested aggregates rejected" `Quick
          test_aggregate_rejects_nested;
        Alcotest.test_case "aggregates over empty / all-NULL groups" `Quick
          test_aggregate_empty_and_null_groups;
        Alcotest.test_case "HAVING aggregate scoping" `Quick
          test_having_aggregate_scoping;
      ] );
  ]
