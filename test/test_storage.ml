(* Storage-fault survival: at-rest corruption detection in every frame
   region, torn-tail vs. rot disambiguation, checkpoint-slot CRC
   fallback, the salvage ladder under a double fault (corruption found
   during crash recovery), the planted silent-corruption bug shrinking
   to a 1-minimal reproducer, and flag-off byte-identity. *)

open Strip_relational
open Strip_txn
open Strip_core
open Strip_pta
open Strip_chaos

(* ------------------------------------------------------------------ *)
(* WAL frame regions: a flip anywhere inside a mid-log frame must be
   reported by [Wal.verify], with a resync point that re-parses cleanly *)

let commit i = Wal.Commit { txid = i; time = 0.01 *. float_of_int i; ops = [] }

let filled_wal n =
  let w = Wal.create () in
  let lsns = List.map (fun i -> Wal.append w (commit i)) (List.init n Fun.id) in
  Wal.fsync w;
  (w, Array.of_list lsns)

let check_flip_detected w ~flip_at ~frame_start label =
  Wal.flip_byte w ~lsn:flip_at;
  (match Wal.verify w with
  | [ (l, r) ] ->
    Alcotest.(check int) (label ^ ": range starts at the frame") frame_start l;
    Alcotest.(check bool) (label ^ ": resync strictly later") true (r > l);
    Alcotest.(check bool)
      (label ^ ": resync inside the log") true
      (r <= Wal.durable_end w);
    (* the chain really does parse cleanly from the resync point *)
    let rd = Wal.read_from w ~lsn:r in
    Alcotest.(check (option int)) (label ^ ": clean past resync") None
      rd.Wal.corrupt_at
  | ranges ->
    Alcotest.fail
      (Printf.sprintf "%s: expected 1 corrupt range, got %d" label
         (List.length ranges)));
  (* flipping the same byte again restores the original *)
  Wal.flip_byte w ~lsn:flip_at;
  Alcotest.(check bool) (label ^ ": unflip restores a clean log") true
    (Wal.verify w = [])

let test_frame_region_flips () =
  let w, lsns = filled_wal 50 in
  Alcotest.(check bool) "clean log verifies empty" true (Wal.verify w = []);
  let l = lsns.(20) and next = lsns.(21) in
  (* frame layout: [u32 len][u32 crc][payload] *)
  check_flip_detected w ~flip_at:l ~frame_start:l "len header";
  check_flip_detected w ~flip_at:(l + 4) ~frame_start:l "crc field";
  check_flip_detected w ~flip_at:(l + 8) ~frame_start:l "payload first byte";
  check_flip_detected w ~flip_at:(next - 1) ~frame_start:l "payload last byte"

let test_torn_tail_not_flagged () =
  (* A flipped len header in the FINAL frame makes the parse run past
     end-of-log with no later resync — indistinguishable from a torn
     final append, which recovery truncates.  The scrubber must not
     flag it; [Wal.read] must report it as torn. *)
  let w, lsns = filled_wal 10 in
  let last = lsns.(9) in
  Wal.flip_byte w ~lsn:last;
  Alcotest.(check bool) "scrub does not flag the torn-looking tail" true
    (Wal.verify w = []);
  let rd = Wal.read w in
  Alcotest.(check (option int)) "read drops it as a torn tail" (Some last)
    rd.Wal.torn_at;
  Alcotest.(check (option int)) "not as corruption" None rd.Wal.corrupt_at;
  Alcotest.(check int) "every earlier record survives" 9
    (List.length rd.Wal.records);
  (* the same flip mid-log IS corruption: the chain resyncs before the
     end, so a genuine torn write cannot explain the bytes *)
  let w2, lsns2 = filled_wal 10 in
  Wal.flip_byte w2 ~lsn:lsns2.(4);
  (match Wal.verify w2 with
  | [ (l, _) ] ->
    Alcotest.(check int) "mid-log len flip is rot, not tear" lsns2.(4) l
  | _ -> Alcotest.fail "expected exactly one corrupt range")

let test_truncation_boundary_flip () =
  (* Rot in the first frame after a checkpoint truncation: the range
     must be reported relative to the (re-based) log, starting at the
     new base LSN. *)
  let w, lsns = filled_wal 30 in
  Wal.truncate_to w ~lsn:lsns.(15);
  Alcotest.(check int) "base moved" lsns.(15) (Wal.base_lsn w);
  Wal.flip_byte w ~lsn:(lsns.(15) + 8);
  (match Wal.verify w with
  | [ (l, r) ] ->
    Alcotest.(check int) "range starts at the new base" lsns.(15) l;
    Alcotest.(check int) "resync at the next frame" lsns.(16) r
  | _ -> Alcotest.fail "expected exactly one corrupt range");
  (* a flip below the base is out of range — the bytes left the system *)
  Alcotest.(check bool) "flip below the truncation floor rejected" true
    (match Wal.flip_byte w ~lsn:lsns.(3) with
    | exception Wal.Out_of_range _ -> true
    | () -> false)

let test_bound_rows_flip_and_splice () =
  (* Rot inside a queued unique transaction's bound-rows payload, then
     the replica rung of the salvage ladder: splicing the clean bytes
     back restores the log byte-for-byte. *)
  let w = Wal.create () in
  let enq =
    Wal.Uq_enqueue
      {
        func = "f";
        key = [ Value.Str "S1" ];
        release_time = 2.0;
        created_at = 1.0;
        bound =
          [
            ( "matches",
              [
                [| Value.Str "C1"; Value.Float 0.5 |];
                [| Value.Str "C2"; Value.Float 0.25 |];
              ] );
          ];
      }
  in
  ignore (Wal.append w (commit 0));
  let enq_lsn = Wal.append w enq in
  ignore (Wal.append w (commit 1));
  Wal.fsync w;
  let clean = Wal.durable_slice w ~from_lsn:0 in
  (* deep inside the bound-rows payload *)
  Wal.flip_byte w ~lsn:(enq_lsn + 24);
  let l, r =
    match Wal.verify w with
    | [ range ] -> range
    | _ -> Alcotest.fail "expected exactly one corrupt range"
  in
  Alcotest.(check int) "the enqueue frame is the corrupt one" enq_lsn l;
  let rd = Wal.read w in
  Alcotest.(check (option int)) "read stops at the rotten enqueue"
    (Some enq_lsn) rd.Wal.corrupt_at;
  (* replica splice: overwrite exactly the corrupt range with clean bytes *)
  Wal.splice w ~lsn:l ~bytes:(String.sub clean l (r - l));
  Alcotest.(check bool) "spliced log verifies clean" true (Wal.verify w = []);
  Alcotest.(check string) "byte-identical to the pre-rot log" clean
    (Wal.durable_slice w ~from_lsn:0);
  let rd' = Wal.read w in
  Alcotest.(check int) "all three records readable again" 3
    (List.length rd'.Wal.records);
  Alcotest.(check bool) "the bound rows round-trip" true
    (List.exists (fun (_, rec_) -> rec_ = enq) rd'.Wal.records)

(* ------------------------------------------------------------------ *)
(* Checkpoint slots: per-slot CRCs and fallback past a rotted image *)

let test_slot_crc_fallback () =
  let d = Durable.create ~retain:2 () in
  Durable.arm_media d;
  Durable.install_checkpoint d ~encoded:"older-image-aaaa" ~lsn:0 ~time:1.0;
  Durable.install_checkpoint d ~encoded:"newer-image-bbbb" ~lsn:0 ~time:2.0;
  Alcotest.(check bool) "both slots verify before the rot" true
    (Durable.slots_valid d);
  (match Durable.verified_slot d with
  | Some (img, _, time, skipped) ->
    Alcotest.(check string) "newest slot wins" "newer-image-bbbb" img;
    Alcotest.(check (float 1e-9)) "with its install time" 2.0 time;
    Alcotest.(check int) "nothing skipped" 0 skipped
  | None -> Alcotest.fail "expected a verified slot");
  Alcotest.(check bool) "flip lands" true (Durable.flip_snapshot_byte d ~frac:0.5);
  Alcotest.(check bool) "slot set no longer valid" false (Durable.slots_valid d);
  (* regression: recovery falls back to the older slot instead of
     restoring from the rotted image *)
  (match Durable.verified_slot d with
  | Some (img, _, time, skipped) ->
    Alcotest.(check string) "older slot served" "older-image-aaaa" img;
    Alcotest.(check (float 1e-9)) "the older install time" 1.0 time;
    Alcotest.(check int) "one CRC-failing slot passed over" 1 skipped
  | None -> Alcotest.fail "expected fallback to the older slot");
  let c = Durable.media_counts d in
  Alcotest.(check int) "the flip was ledgered" 1 c.Durable.injected_bitrot_cp;
  Alcotest.(check int) "still outstanding before the scrub" 1
    c.Durable.outstanding;
  (* scrubbing drops the bad slot and marks the fault detected *)
  Alcotest.(check int) "scrub drops exactly the bad slot" 1
    (Durable.scrub_slots d);
  Alcotest.(check bool) "the survivor set verifies" true (Durable.slots_valid d);
  let c' = Durable.media_counts d in
  Alcotest.(check int) "fault detected, no longer silent" 0
    c'.Durable.outstanding;
  Alcotest.(check int) "exactly one detection" 1 c'.Durable.detected

(* ------------------------------------------------------------------ *)
(* Double fault: corruption discovered during crash recovery.  Rung 1
   (replica bytes available) splices and loses nothing; rung 3 (no
   replica) quarantines the tail and survives with the checkpoint. *)

let figure4_script =
  {|create table stocks (symbol string, price float);
    create index stocks_sym on stocks (symbol);
    create table comps_list (comp string, symbol string, weight float);
    create index cl_sym on comps_list (symbol);
    insert into stocks values ('S1', 30.0), ('S2', 40.0), ('S3', 50.0);
    insert into comps_list values
      ('C1','S1',0.5), ('C1','S3',0.5), ('C2','S1',0.3), ('C2','S2',0.7)|}

let comp_view_sql =
  "create view comp_prices as select comp, sum(price * weight) as price \
   from stocks, comps_list where stocks.symbol = comps_list.symbol group by \
   comp"

let condition =
  {|select comp, comps_list.symbol as symbol, weight,
           old.price as old_price, new.price as new_price
    from comps_list, new, old
    where comps_list.symbol = new.symbol
      and new.execute_order = old.execute_order
    bind as matches|}

let install_comp_rule db =
  Strip_db.register_function db "f" (fun ctx ->
      let r =
        Transaction.query ctx.Rule_manager.txn
          "select comp, sum((new_price - old_price) * weight) as diff from \
           matches group by comp"
      in
      List.iter
        (fun row ->
          ignore
            (Transaction.exec ctx.Rule_manager.txn
               (Printf.sprintf
                  "update comp_prices set price += %.17g where comp = '%s'"
                  (Value.to_float row.(1))
                  (Value.to_string row.(0)))))
        (Query.rows r));
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r on stocks when updated price if %s then execute f \
        unique after 1.0 seconds"
       condition)

(* Run the figure-4 workload to a crash with one fsynced commit rotted;
   returns the durable store, the pre-rot clean log copy (the replica's
   view of the bytes) and the LSN whose frame was flipped. *)
let crashed_with_rot () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db1 = Strip_db.create ~durable () in
  Strip_db.exec_script db1 figure4_script;
  Strip_db.declare_view db1 ~sql:comp_view_sql;
  install_comp_rule db1;
  Strip_db.checkpoint db1;
  Strip_db.submit_update db1 ~at:0.0 (fun txn ->
      ignore
        (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'"));
  Strip_db.submit_update db1 ~at:0.3 (fun txn ->
      ignore
        (Transaction.exec txn "update stocks set price = 38.0 where symbol = 'S2'"));
  Strip_db.run db1 ~until:0.5;
  let w = Durable.wal durable in
  let base = Wal.base_lsn w in
  let clean = Wal.durable_slice w ~from_lsn:base in
  Strip_db.crash db1;
  (* rot the first redo frame after the checkpoint — mid-log, because a
     later committed frame follows it *)
  Durable.arm_media durable;
  Wal.flip_byte w ~lsn:(base + 8);
  Durable.note_injected durable ~kind:Durable.Bitrot_wal ~lsn:(base + 8) ~len:1;
  (durable, clean, base)

let test_recovery_salvage_from_replica () =
  let durable, clean, base = crashed_with_rot () in
  let salvage ~from_lsn ~len =
    Some (String.sub clean (from_lsn - base) len)
  in
  let db2 = Strip_db.create ~now:0.5 ~durable () in
  let rs =
    Recovery.recover ~salvage db2 ~reinstall:(fun () -> install_comp_rule db2)
  in
  Alcotest.(check bool) "corruption was seen" true rs.Recovery.corrupt_tail;
  Alcotest.(check int) "one range replica-salvaged" 1
    rs.Recovery.salvaged_ranges;
  Alcotest.(check bool) "clean bytes fetched" true (rs.Recovery.salvaged_bytes > 0);
  Alcotest.(check int) "nothing quarantined" 0 rs.Recovery.quarantined_bytes;
  Alcotest.(check int) "both commits redone despite the rot" 2
    rs.Recovery.redo_commits;
  Alcotest.(check int) "the queued unique batch survived" 1
    rs.Recovery.requeued;
  (* the salvage healed the ledger: no fault left outstanding *)
  Alcotest.(check int) "fault repaired in the ledger" 0
    (Durable.outstanding durable);
  Strip_db.run db2;
  Alcotest.(check (list (pair string (float 1e-9))))
    "maintained view caught up losslessly"
    [ ("C1", 40.5); ("C2", 35.9) ]
    (List.map
       (fun row -> (Value.to_string row.(0), Value.to_float row.(1)))
       (Strip_db.query_rows db2
          "select comp, price from comp_prices order by comp"));
  Alcotest.(check int) "auditor agrees" 0
    (List.length (Auditor.audit db2).Auditor.divergences)

let test_recovery_quarantine_without_replica () =
  let durable, _clean, _base = crashed_with_rot () in
  let db2 = Strip_db.create ~now:0.5 ~durable () in
  let rs = Recovery.recover db2 ~reinstall:(fun () -> install_comp_rule db2) in
  Alcotest.(check bool) "corruption was seen" true rs.Recovery.corrupt_tail;
  Alcotest.(check int) "no replica to salvage from" 0 rs.Recovery.salvaged_ranges;
  Alcotest.(check bool) "the tail was quarantined" true
    (rs.Recovery.quarantined_bytes > 0);
  Alcotest.(check int) "no commit could be redone" 0 rs.Recovery.redo_commits;
  Alcotest.(check int) "quarantine recorded in the ledger" 0
    (Durable.outstanding durable);
  (* the checkpoint base state survived; the audit's repair pass
     restores whatever maintenance the quarantined records carried *)
  Alcotest.(check (list (pair string (float 1e-9))))
    "checkpoint base state restored"
    [ ("S1", 30.0); ("S2", 40.0); ("S3", 50.0) ]
    (List.map
       (fun row -> (Value.to_string row.(0), Value.to_float row.(1)))
       (Strip_db.query_rows db2
          "select symbol, price from stocks order by symbol"));
  Strip_db.run db2;
  let audit = Auditor.audit db2 in
  Alcotest.(check int) "audit finds nothing broken after the drain" 0
    (List.length audit.Auditor.divergences)

(* ------------------------------------------------------------------ *)
(* The planted bug: a checkpoint-image flip with the scrubber disabled
   is never read, so nothing detects it — [no_silent_corruption] must
   fire, and the shrinker must isolate the flip as a 1-minimal
   replayable reproducer. *)

let scrubless = { Experiment.scrub_every = None; retain = 2 }

let test_planted_silent_corruption_shrinks () =
  let rot = Experiment.Bitrot_at { at = 18.0; target = `Checkpoint; frac = 0.5 } in
  let s =
    {
      Schedule.seed = 0;
      scale = 0.02;
      events =
        [
          Experiment.Checkpoint_at 6.0;
          Experiment.Drop_burst { at = 8.0; until_s = 9.0; rate = 0.5 };
          rot;
        ];
    }
  in
  let silent o =
    List.exists
      (fun v -> v.Explore.invariant = "no_silent_corruption")
      o.Explore.violations
  in
  let o = Explore.run_schedule ~storage:scrubless s in
  Alcotest.(check bool) "the de-armed scrubber misses the rot" true (silent o);
  (match o.Explore.storage with
  | Some sm ->
    Alcotest.(check int) "the flip landed" 1 sm.Experiment.injected_bitrot_cp;
    Alcotest.(check bool) "and stayed outstanding" true
      (sm.Experiment.faults_outstanding >= 1)
  | None -> Alcotest.fail "expected storage metrics");
  (* the default scrubber catches the identical schedule *)
  let o_scrubbed = Explore.run_schedule s in
  Alcotest.(check bool) "the default scrubber detects it" false
    (silent o_scrubbed);
  (* shrink: the decoys fall away, the flip alone reproduces *)
  let shrunk = Explore.shrink ~storage:scrubless s in
  Alcotest.(check int) "1-minimal reproducer" 1
    (List.length shrunk.Explore.schedule.Schedule.events);
  (match shrunk.Explore.schedule.Schedule.events with
  | [ Experiment.Bitrot_at { target = `Checkpoint; _ } ] -> ()
  | _ -> Alcotest.fail "expected the checkpoint flip to survive shrinking");
  Alcotest.(check bool) "the violation survives the shrink" true (silent shrunk);
  (* the serialized reproducer replays the identical silent fault *)
  let replayed =
    Explore.run_schedule ~storage:scrubless
      (Schedule.of_string (Schedule.to_string shrunk.Explore.schedule))
  in
  Alcotest.(check bool) "replay reproduces the violation" true (silent replayed)

(* ------------------------------------------------------------------ *)
(* Storage sweep smoke + flag-off identity *)

let test_storage_sweep_smoke () =
  let outcomes = Explore.explore_storage ~scale:0.02 ~seed:2 ~schedules:2 () in
  Alcotest.(check int) "every schedule ran" 2 (List.length outcomes);
  Alcotest.(check int) "no invariant violated" 0
    (Explore.total_violations outcomes);
  List.iter
    (fun o ->
      Alcotest.(check bool) "every schedule carries a media event" true
        (List.exists Experiment.is_storage_event
           o.Explore.schedule.Schedule.events);
      match o.Explore.storage with
      | Some sm ->
        Alcotest.(check int) "no silent corruption" 0
          sm.Experiment.faults_outstanding;
        Alcotest.(check bool) "the media converged" true
          sm.Experiment.final_clean;
        let open Strip_obs in
        let j = Explore.outcome_json o in
        Alcotest.(check bool) "outcome JSON carries the storage block" true
          (Json.member "storage" j <> None)
      | None -> Alcotest.fail "expected storage metrics on a storage schedule")
    outcomes;
  (* determinism: the identical sweep replays byte-identically *)
  let outcomes' = Explore.explore_storage ~scale:0.02 ~seed:2 ~schedules:2 () in
  Alcotest.(check bool) "the sweep is deterministic" true
    (outcomes = outcomes')

let test_flag_off_no_storage_surface () =
  (* With no storage config and no media events, the substrate must not
     arm: no metrics block, no JSON member, and the durable bytes are
     identical to a run that never heard of storage faults. *)
  Task.reset_ids ();
  let base =
    Experiment.default_config
      (Experiment.Comp_view Comp_rules.Unique_on_comp)
      ~delay:0.5
  in
  let cfg = Experiment.quick base 0.02 in
  let cfg =
    { cfg with Experiment.recovery = Some Experiment.default_recovery }
  in
  let m = Experiment.run cfg in
  Alcotest.(check bool) "no storage metrics" true (m.Experiment.storage = None);
  let open Strip_obs in
  Alcotest.(check bool) "no storage member in the report JSON" true
    (Json.member "storage" (Report.metrics_json m) = None);
  (* arming the substrate without any fault must not change the run's
     observable outcome: same makespan, same recompute count, same
     maintained-view verification *)
  Task.reset_ids ();
  let m' =
    Experiment.run
      { cfg with Experiment.storage = Some Experiment.default_storage }
  in
  (match m'.Experiment.storage with
  | Some sm ->
    Alcotest.(check int) "nothing injected" 0
      (sm.Experiment.injected_bitrot_wal + sm.Experiment.injected_bitrot_cp
     + sm.Experiment.injected_fsync_lie);
    Alcotest.(check int) "nothing outstanding" 0
      sm.Experiment.faults_outstanding;
    Alcotest.(check bool) "scrubber ran and found the media clean" true
      (sm.Experiment.scrub_passes > 0 && sm.Experiment.wal_corruptions = 0);
    Alcotest.(check bool) "final media clean" true sm.Experiment.final_clean
  | None -> Alcotest.fail "expected storage metrics when armed");
  (* the workload itself is untouched — the scrubber only adds its own
     modeled scan time, it never changes what the engine computes *)
  Alcotest.(check int) "same recompute count" m.Experiment.n_recompute
    m'.Experiment.n_recompute;
  Alcotest.(check int) "same update count" m.Experiment.n_updates
    m'.Experiment.n_updates;
  (* flag-off is bit-stable: two identical unarmed runs agree exactly *)
  Task.reset_ids ();
  let m'' = Experiment.run cfg in
  Alcotest.(check (float 1e-9)) "flag-off runs are byte-stable"
    m.Experiment.makespan_s m''.Experiment.makespan_s;
  Alcotest.(check string) "flag-off reports are byte-identical"
    (Json.to_string (Report.metrics_json m))
    (Json.to_string (Report.metrics_json m''))

let suite =
  [
    ( "storage/wal",
      [
        Alcotest.test_case "flips in every frame region detected" `Quick
          test_frame_region_flips;
        Alcotest.test_case "torn tail is not flagged as rot" `Quick
          test_torn_tail_not_flagged;
        Alcotest.test_case "rot at the truncation boundary" `Quick
          test_truncation_boundary_flip;
        Alcotest.test_case "bound-rows rot splices back byte-identically"
          `Quick test_bound_rows_flip_and_splice;
      ] );
    ( "storage/checkpoint",
      [
        Alcotest.test_case "slot CRC fallback past a rotted image" `Quick
          test_slot_crc_fallback;
      ] );
    ( "storage/recovery",
      [
        Alcotest.test_case "double fault: replica salvage during redo" `Slow
          test_recovery_salvage_from_replica;
        Alcotest.test_case "double fault: quarantine without a replica" `Slow
          test_recovery_quarantine_without_replica;
      ] );
    ( "storage/chaos",
      [
        Alcotest.test_case "planted silent rot shrinks to 1-minimal" `Slow
          test_planted_silent_corruption_shrinks;
        Alcotest.test_case "storage sweep runs clean and deterministic" `Slow
          test_storage_sweep_smoke;
        Alcotest.test_case "flag-off leaves no storage surface" `Slow
          test_flag_off_no_storage_surface;
      ] );
  ]
