(* Crash recovery: WAL framing and corruption handling, fuzzy checkpoints,
   restart redo with exactly-once unique batches, crash semantics of the
   engine, and the derived-data consistency auditor. *)

open Strip_relational
open Strip_txn
open Strip_core
open Strip_pta
module Engine = Strip_sim.Engine
module Stats = Strip_sim.Stats

(* ------------------------------------------------------------------ *)
(* WAL: append / fsync / read round-trip *)

let sample_ops =
  [
    Wal.Insert
      {
        table = "t";
        order = 1;
        values = [| Value.Int 1; Value.Str "a"; Value.Float 1.5 |];
      };
    Wal.Update
      {
        table = "t";
        order = 2;
        old_values = [| Value.Int 1; Value.Str "a"; Value.Float 1.5 |];
        new_values = [| Value.Int 1; Value.Str "a"; Value.Float 2.5 |];
      };
    Wal.Delete
      { table = "u"; order = 3; values = [| Value.Null; Value.Bool true |] };
  ]

let sample_records =
  [
    Wal.Commit { txid = 7; time = 1.25; ops = sample_ops };
    Wal.Uq_enqueue
      {
        func = "f";
        key = [ Value.Str "S1" ];
        release_time = 2.0;
        created_at = 1.0;
        bound = [ ("matches", [ [| Value.Str "C1"; Value.Float 0.5 |] ]) ];
      };
    Wal.Uq_merge
      {
        func = "f";
        key = [ Value.Str "S1" ];
        bound = [ ("matches", [ [| Value.Str "C2"; Value.Float 0.25 |] ]) ];
      };
    Wal.Uq_release { func = "f"; key = [ Value.Str "S1" ] };
    Wal.Checkpoint_mark { time = 3.0; lsn = 0 };
  ]

let test_wal_roundtrip () =
  let w = Wal.create () in
  let lsns = List.map (Wal.append w) sample_records in
  Alcotest.(check bool) "LSNs strictly increase" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 4) lsns) (List.tl lsns));
  Alcotest.(check int) "nothing durable before fsync" 0 (Wal.durable_bytes w);
  Wal.fsync w;
  Alcotest.(check int) "all bytes durable after fsync" (Wal.appended_bytes w)
    (Wal.durable_bytes w);
  let r = Wal.read w in
  Alcotest.(check (option int)) "no torn tail" None r.Wal.torn_at;
  Alcotest.(check (option int)) "no corruption" None r.Wal.corrupt_at;
  Alcotest.(check int) "every record read back" (List.length sample_records)
    (List.length r.Wal.records);
  List.iter2
    (fun expected (lsn, got) ->
      Alcotest.(check bool)
        (Printf.sprintf "record at lsn %d round-trips" lsn)
        true (expected = got))
    sample_records r.Wal.records;
  Alcotest.(check (list int)) "read returns the append LSNs" lsns
    (List.map fst r.Wal.records)

let test_wal_ops_of_tlog_order () =
  (* The redo ops must preserve the transaction's execute_order and full
     images, straight from the Tlog a commit would hand to the rule
     system. *)
  let db = Strip_db.create () in
  Strip_db.exec_script db
    {|create table t (k int, v float);
      insert into t values (1, 1.0), (2, 2.0)|};
  Strip_db.with_txn db (fun txn ->
      ignore (Transaction.exec txn "insert into t values (3, 3.0)");
      ignore (Transaction.exec txn "update t set v = 9.0 where k = 1");
      ignore (Transaction.exec txn "delete from t where k = 2");
      let ops = Wal.ops_of_tlog (Transaction.log txn) in
      Alcotest.(check (list int)) "execute_order preserved" [ 1; 2; 3 ]
        (List.map Wal.op_order ops);
      match ops with
      | [
       Wal.Insert { values = iv; _ };
       Wal.Update { old_values; new_values; _ };
       Wal.Delete { values = dv; _ };
      ] ->
        Alcotest.(check bool) "insert image" true
          (iv = [| Value.Int 3; Value.Float 3.0 |]);
        Alcotest.(check bool) "update old image" true
          (old_values = [| Value.Int 1; Value.Float 1.0 |]);
        Alcotest.(check bool) "update new image" true
          (new_values = [| Value.Int 1; Value.Float 9.0 |]);
        Alcotest.(check bool) "delete image" true
          (dv = [| Value.Int 2; Value.Float 2.0 |])
      | _ -> Alcotest.fail "expected [insert; update; delete]")

let test_wal_lose_tail () =
  let w = Wal.create () in
  let a = Wal.Commit { txid = 1; time = 0.1; ops = [] } in
  let b = Wal.Commit { txid = 2; time = 0.2; ops = [] } in
  let c = Wal.Commit { txid = 3; time = 0.3; ops = [] } in
  ignore (Wal.append w a);
  Wal.fsync w;
  ignore (Wal.append w b);
  Alcotest.(check bool) "b is pending" true (Wal.pending_bytes w > 0);
  Wal.lose_tail w;
  Alcotest.(check int) "pending tail gone" 0 (Wal.pending_bytes w);
  Alcotest.(check (list bool)) "only the fsynced record survives" [ true ]
    (List.map (fun (_, r) -> r = a) (Wal.read w).Wal.records);
  (* the log stays appendable after a crash *)
  ignore (Wal.append w c);
  Wal.fsync w;
  Alcotest.(check int) "append after crash works" 2
    (List.length (Wal.read w).Wal.records)

let test_wal_torn_tail () =
  let w = Wal.create () in
  let a = Wal.Commit { txid = 1; time = 0.1; ops = sample_ops } in
  let b = Wal.Commit { txid = 2; time = 0.2; ops = sample_ops } in
  ignore (Wal.append w a);
  let lsn_b = Wal.append w b in
  Wal.fsync w;
  let s = Wal.durable_contents w in
  (* chop the last record mid-frame: an incomplete final entry is a torn
     write, dropped without declaring the log corrupt *)
  Wal.set_durable_for_test w (String.sub s 0 (String.length s - 3));
  let r = Wal.read w in
  Alcotest.(check int) "prefix readable" 1 (List.length r.Wal.records);
  Alcotest.(check (option int)) "torn tail reported" (Some lsn_b) r.Wal.torn_at;
  Alcotest.(check (option int)) "not corruption" None r.Wal.corrupt_at

let test_wal_tail_cut_at_frame_boundary () =
  (* A crash that lands exactly on a frame boundary leaves a clean log:
     the last full record survives and nothing is reported torn.  One
     byte either side of the boundary must still classify as torn. *)
  let w = Wal.create () in
  let a = Wal.Commit { txid = 1; time = 0.1; ops = sample_ops } in
  let b = Wal.Commit { txid = 2; time = 0.2; ops = sample_ops } in
  let lsn_a = Wal.append w a in
  let lsn_b = Wal.append w b in
  Wal.fsync w;
  let s = Wal.durable_contents w in
  let boundary = lsn_b - lsn_a in
  (* exactly on the boundary: b never made it at all — clean *)
  Wal.set_durable_for_test w (String.sub s 0 boundary);
  let r = Wal.read w in
  Alcotest.(check (option int)) "boundary cut is clean" None r.Wal.torn_at;
  Alcotest.(check (option int)) "boundary cut is not corrupt" None
    r.Wal.corrupt_at;
  Alcotest.(check (list int)) "whole prefix read" [ lsn_a ]
    (List.map fst r.Wal.records);
  (* one byte past the boundary: a sliver of b's header — torn at b *)
  Wal.set_durable_for_test w (String.sub s 0 (boundary + 1));
  let r = Wal.read w in
  Alcotest.(check (option int)) "boundary+1 torn at b" (Some lsn_b)
    r.Wal.torn_at;
  Alcotest.(check int) "a still read" 1 (List.length r.Wal.records);
  (* one byte short of the boundary: a's frame is incomplete — torn at a *)
  Wal.set_durable_for_test w (String.sub s 0 (boundary - 1));
  let r = Wal.read w in
  Alcotest.(check (option int)) "boundary-1 torn at a" (Some lsn_a)
    r.Wal.torn_at;
  Alcotest.(check int) "nothing read" 0 (List.length r.Wal.records)

let test_wal_append_batch_equivalence () =
  (* append_batch is a pure encoding optimisation: byte stream, LSNs and
     meter ticks must match the per-record appends exactly. *)
  let one = Wal.create () and batch = Wal.create () in
  Meter.reset ();
  let before = Meter.snapshot () in
  let lsns_one = List.map (Wal.append one) sample_records in
  let ticks_one = Meter.diff before (Meter.snapshot ()) in
  let before = Meter.snapshot () in
  let lsns_batch = Wal.append_batch batch sample_records in
  let ticks_batch = Meter.diff before (Meter.snapshot ()) in
  Wal.fsync one;
  Wal.fsync batch;
  Alcotest.(check (list int)) "same LSNs" lsns_one lsns_batch;
  Alcotest.(check string) "same bytes" (Wal.durable_contents one)
    (Wal.durable_contents batch);
  Alcotest.(check (list (pair string int))) "same meter ticks" ticks_one
    ticks_batch;
  Alcotest.(check int) "same append count" (Wal.n_appends one)
    (Wal.n_appends batch);
  Alcotest.(check (list int)) "empty batch appends nothing" []
    (Wal.append_batch batch []);
  Alcotest.(check int) "volume accounted" (Wal.appended_bytes one)
    (Wal.appended_bytes batch)

let test_wal_mid_log_corruption () =
  let w = Wal.create () in
  let a = Wal.Commit { txid = 1; time = 0.1; ops = sample_ops } in
  let b = Wal.Commit { txid = 2; time = 0.2; ops = sample_ops } in
  let c = Wal.Commit { txid = 3; time = 0.3; ops = sample_ops } in
  let lsn_a = Wal.append w a in
  let lsn_b = Wal.append w b in
  ignore (Wal.append w c);
  Wal.fsync w;
  let s = Bytes.of_string (Wal.durable_contents w) in
  (* flip one payload byte of the middle record: valid entries follow, so
     this is mid-log corruption, and scanning must stop there rather than
     resynchronize on garbage *)
  let off = lsn_b - lsn_a + 10 in
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0xff));
  Wal.set_durable_for_test w (Bytes.to_string s);
  let r = Wal.read w in
  Alcotest.(check int) "only the prefix is trusted" 1 (List.length r.Wal.records);
  Alcotest.(check (option int)) "corruption reported at the bad entry"
    (Some lsn_b) r.Wal.corrupt_at

let test_wal_truncate () =
  let w = Wal.create () in
  let a = Wal.Commit { txid = 1; time = 0.1; ops = [] } in
  let b = Wal.Commit { txid = 2; time = 0.2; ops = sample_ops } in
  ignore (Wal.append w a);
  let lsn_b = Wal.append w b in
  Wal.fsync w;
  Wal.truncate_to w ~lsn:lsn_b;
  Alcotest.(check int) "base moved to the checkpoint LSN" lsn_b (Wal.base_lsn w);
  let r = Wal.read w in
  Alcotest.(check (list int)) "later entries keep their LSNs" [ lsn_b ]
    (List.map fst r.Wal.records);
  Alcotest.(check bool) "record intact" true
    (snd (List.hd r.Wal.records) = b);
  Alcotest.(check bool) "LSN outside the durable log rejected" true
    (match Wal.truncate_to w ~lsn:(Wal.durable_end w + 1) with
    | exception Wal.Out_of_range _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Checkpoints *)

let figure4_script =
  {|create table stocks (symbol string, price float);
    create index stocks_sym on stocks (symbol);
    create table comps_list (comp string, symbol string, weight float);
    create index cl_sym on comps_list (symbol);
    insert into stocks values ('S1', 30.0), ('S2', 40.0), ('S3', 50.0);
    insert into comps_list values
      ('C1','S1',0.5), ('C1','S3',0.5), ('C2','S1',0.3), ('C2','S2',0.7)|}

let comp_view_sql =
  "create view comp_prices as select comp, sum(price * weight) as price \
   from stocks, comps_list where stocks.symbol = comps_list.symbol group by \
   comp"

let condition =
  {|select comp, comps_list.symbol as symbol, weight,
           old.price as old_price, new.price as new_price
    from comps_list, new, old
    where comps_list.symbol = new.symbol
      and new.execute_order = old.execute_order
    bind as matches|}

(* Incremental comp_prices maintenance over the bound batch, as in the
   paper's Figure 4/5 example. *)
let install_comp_rule db =
  Strip_db.register_function db "f" (fun ctx ->
      let r =
        Transaction.query ctx.Rule_manager.txn
          "select comp, sum((new_price - old_price) * weight) as diff from \
           matches group by comp"
      in
      List.iter
        (fun row ->
          ignore
            (Transaction.exec ctx.Rule_manager.txn
               (Printf.sprintf
                  "update comp_prices set price += %.17g where comp = '%s'"
                  (Value.to_float row.(1))
                  (Value.to_string row.(0)))))
        (Query.rows r));
  Strip_db.create_rule db
    (Printf.sprintf
       "create rule r on stocks when updated price if %s then execute f \
        unique after 1.0 seconds"
       condition)

let setup_durable_db durable =
  let db = Strip_db.create ~durable () in
  Strip_db.exec_script db figure4_script;
  Strip_db.declare_view db ~sql:comp_view_sql;
  install_comp_rule db;
  db

let test_checkpoint_roundtrip () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db = setup_durable_db durable in
  (* two updates merge into one queued unique batch; stop before its 1 s
     release so the checkpoint must capture it *)
  Strip_db.submit_update db ~at:0.0 (fun txn ->
      ignore
        (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'"));
  Strip_db.submit_update db ~at:0.3 (fun txn ->
      ignore
        (Transaction.exec txn "update stocks set price = 38.0 where symbol = 'S2'"));
  Strip_db.run db ~until:0.5;
  Strip_db.checkpoint db;
  let encoded =
    match Durable.snapshot durable with
    | Some s -> s
    | None -> Alcotest.fail "checkpoint not installed"
  in
  let cp = Checkpoint.decode encoded in
  Alcotest.(check string) "encode/decode round-trips" encoded
    (Checkpoint.encode cp);
  Alcotest.(check (list string)) "base tables and the view captured"
    [ "stocks"; "comps_list"; "comp_prices" ]
    (List.map (fun (t : Checkpoint.table_snap) -> t.Checkpoint.tname)
       cp.Checkpoint.tables);
  Alcotest.(check (list string)) "view definition captured" [ "comp_prices" ]
    (List.map fst cp.Checkpoint.views);
  (match cp.Checkpoint.queue with
  | [ q ] ->
    Alcotest.(check string) "queued unique transaction captured" "f"
      q.Checkpoint.qfunc;
    Alcotest.(check (float 1e-9)) "with its release time" 1.0
      q.Checkpoint.qrelease_time;
    Alcotest.(check int) "with the merged batch (3 matches rows)" 3
      (List.fold_left
         (fun acc (_, rows) -> acc + List.length rows)
         0 q.Checkpoint.qbound)
  | q -> Alcotest.fail (Printf.sprintf "expected 1 queue entry, got %d" (List.length q)));
  Alcotest.(check int) "log truncated behind the checkpoint"
    (Durable.snapshot_lsn durable)
    (Wal.base_lsn (Durable.wal durable));
  (* the run finishes normally after a checkpoint *)
  Strip_db.run db;
  Alcotest.(check int) "no divergence after drain" 0
    (List.length (Auditor.audit db).Auditor.divergences)

(* ------------------------------------------------------------------ *)
(* Crash + restart: exactly-once across the WAL and rebuilt queue *)

let test_crash_recovery_exactly_once () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db1 = setup_durable_db durable in
  Strip_db.checkpoint db1;
  Strip_db.submit_update db1 ~at:0.0 (fun txn ->
      ignore
        (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'");
      ignore
        (Transaction.exec txn "update stocks set price = 39.0 where symbol = 'S2'"));
  Strip_db.submit_update db1 ~at:0.3 (fun txn ->
      ignore
        (Transaction.exec txn "update stocks set price = 38.0 where symbol = 'S2'");
      ignore
        (Transaction.exec txn "update stocks set price = 51.0 where symbol = 'S3'"));
  (* both updates commit (and fsync); the merged unique batch is still
     queued when the crash hits *)
  Strip_db.run db1 ~until:0.5;
  Strip_db.crash db1;
  let db2 = Strip_db.create ~now:0.5 ~durable () in
  let rs = Recovery.recover db2 ~reinstall:(fun () -> install_comp_rule db2) in
  Alcotest.(check bool) "recovered from the checkpoint" true
    rs.Recovery.had_checkpoint;
  Alcotest.(check int) "both update commits redone" 2 rs.Recovery.redo_commits;
  Alcotest.(check int) "the queued batch rebuilt" 1 rs.Recovery.requeued;
  Alcotest.(check int) "with every merged row" 5 rs.Recovery.requeued_rows;
  Alcotest.(check bool) "clean log tail" true
    ((not rs.Recovery.torn_tail) && not rs.Recovery.corrupt_tail);
  Strip_db.run db2;
  (* exactly-once: each diff applied once, none lost, none doubled *)
  Alcotest.(check (list (pair string (float 1e-9))))
    "maintained view caught up after the crash"
    [ ("C1", 41.0); ("C2", 35.9) ]
    (List.map
       (fun row -> (Value.to_string row.(0), Value.to_float row.(1)))
       (Strip_db.query_rows db2
          "select comp, price from comp_prices order by comp"));
  Alcotest.(check int) "auditor agrees" 0
    (List.length (Auditor.audit db2).Auditor.divergences)

let test_recovered_base_equals_pre_crash () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db1 = setup_durable_db durable in
  Strip_db.checkpoint db1;
  Strip_db.submit_update db1 ~at:0.0 (fun txn ->
      ignore
        (Transaction.exec txn "update stocks set price = 33.0 where symbol = 'S1'"));
  Strip_db.run db1;
  let before =
    Strip_db.query_rows db1 "select symbol, price from stocks order by symbol"
  in
  Strip_db.crash db1;
  let db2 = Strip_db.create ~durable () in
  ignore (Recovery.recover db2 ~reinstall:(fun () -> install_comp_rule db2));
  Alcotest.(check bool) "redo reproduces the committed base state" true
    (before
    = Strip_db.query_rows db2 "select symbol, price from stocks order by symbol")

(* ------------------------------------------------------------------ *)
(* Engine crash semantics: no zombie waiters (satellite regression) *)

let test_discard_all_drains_parked_waiters () =
  Task.reset_ids ();
  let cat = Catalog.create () in
  ignore (Sql_exec.exec_string cat ~env:[] "create table t (k int, v float)");
  ignore (Sql_exec.exec_string cat ~env:[] "insert into t values (3, 0.0)");
  let clock = Clock.create () in
  let locks = Lock.create () in
  let eng = Engine.create ~clock ~locks ~servers:2 () in
  let writer () =
    Task.create ~klass:Task.Update ~func_name:"w" ~release_time:0.0
      ~created_at:0.0 (fun _ ->
        let txn = Transaction.begin_ ~cat ~locks ~clock () in
        (try
           ignore (Transaction.exec txn "update t set v = v + 1.0 where k = 3");
           Transaction.commit txn
         with e ->
           if Transaction.status txn = Transaction.Active then
             Transaction.abort txn;
           raise e))
  in
  let w1 = writer () in
  let w2 = writer () in
  let schema = Schema.of_list [ ("x", Value.TInt) ] in
  let bound = Temp_table.create_materialized ~name:"b" ~schema in
  Temp_table.append_values bound [| Value.Int 1 |];
  let crasher =
    Task.create ~klass:Task.Background ~func_name:"crash" ~release_time:0.0
      ~created_at:0.0
      ~bound:[ ("b", bound) ]
      (fun _ -> raise (Fault.Crashed { at = "test" }))
  in
  Engine.submit eng w1;
  Engine.submit eng w2;
  Engine.submit eng crasher;
  (* w1 holds the row's lock as a zombie until its completion event; w2
     parks on it; the crash fires before any completion is processed *)
  (match Engine.run eng with
  | exception Fault.Crashed _ -> ()
  | () -> Alcotest.fail "crash should propagate");
  Alcotest.(check int) "a waiter was parked when the crash hit" 1
    (Engine.parked_count eng);
  Engine.discard_all eng;
  Alcotest.(check int) "no zombie waiters" 0 (Engine.parked_count eng);
  Alcotest.(check int) "ready queue empty" 0 (Engine.ready_length eng);
  Alcotest.(check int) "event queue empty" 0 (Engine.delayed_length eng);
  Alcotest.(check bool) "parked task left in a well-defined state" true
    (w2.Task.state = Task.Cancelled);
  Alcotest.(check bool) "bound tables retired with their tasks" true
    (Temp_table.retired bound)

(* ------------------------------------------------------------------ *)
(* Auditor: detect, repair, converge *)

let test_auditor_detects_and_repairs () =
  Task.reset_ids ();
  let db = Strip_db.create () in
  Strip_db.exec_script db figure4_script;
  Strip_db.declare_view db ~sql:comp_view_sql;
  Alcotest.(check bool) "fresh view audits clean" true
    (Auditor.clean (Auditor.audit db));
  (* silent corruption: damage the materialized view without touching base
     data, as a lost or doubled maintenance transaction would *)
  Strip_db.submit_update db ~at:0.0 ~label:"corrupt" (fun txn ->
      ignore
        (Transaction.exec txn
           "update comp_prices set price = 999.0 where comp = 'C1'"));
  Strip_db.run db;
  let r = Auditor.audit db in
  (match r.Auditor.divergences with
  | [ d ] ->
    Alcotest.(check string) "right view" "comp_prices" d.Auditor.view;
    Alcotest.(check string) "right key" "C1" (Value.to_string d.Auditor.key)
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 divergence, got %d" (List.length ds)));
  Alcotest.(check int) "one repair enqueued" 1 (Auditor.enqueue_repairs db r);
  Strip_db.run db;
  Alcotest.(check bool) "repair converged" true (Auditor.clean (Auditor.audit db));
  Alcotest.(check (list (pair string (float 1e-9))))
    "repaired values recomputed from base"
    [ ("C1", 40.0); ("C2", 37.0) ]
    (List.map
       (fun row -> (Value.to_string row.(0), Value.to_float row.(1)))
       (Strip_db.query_rows db "select comp, price from comp_prices order by comp"))

let test_auditor_view_filter () =
  let db = Strip_db.create () in
  Strip_db.exec_script db figure4_script;
  Strip_db.declare_view db ~sql:comp_view_sql;
  let r = Auditor.audit ~views:[ "comp_prices" ] db in
  Alcotest.(check (list string)) "only the selected view audited"
    [ "comp_prices" ] (List.map fst r.Auditor.audited);
  let none = Auditor.audit ~views:[ "nosuch" ] db in
  Alcotest.(check int) "unknown names select nothing" 0
    (List.length none.Auditor.audited)

(* ------------------------------------------------------------------ *)
(* End-to-end: experiment crash-restart loop, audit gate, determinism *)

let crashy_cfg () =
  let cfg =
    Experiment.default_config
      (Experiment.Comp_view Comp_rules.Unique_on_symbol) ~delay:1.0
  in
  let cfg = Experiment.quick cfg 0.02 in
  {
    cfg with
    Experiment.recovery =
      Some
        {
          Experiment.default_recovery with
          Experiment.checkpoint_every = Some 5.0;
          crash_at = Some (cfg.Experiment.feed.Strip_market.Feed.duration /. 2.0);
        };
  }

let test_experiment_crash_recovery () =
  Task.reset_ids ();
  let m = Experiment.run (crashy_cfg ()) in
  let r =
    match m.Experiment.recovery with
    | Some r -> r
    | None -> Alcotest.fail "recovery metrics missing"
  in
  Alcotest.(check int) "exactly the scheduled crash" 1 r.Experiment.n_crashes;
  Alcotest.(check bool) "log was replayed" true (r.Experiment.redo_commits > 0);
  Alcotest.(check bool) "queued batches rebuilt" true (r.Experiment.requeued > 0);
  Alcotest.(check bool) "recovery downtime charged" true
    (r.Experiment.total_recovery_s > 0.0);
  Alcotest.(check bool) "audit clean without repairs" true
    (r.Experiment.audit_clean && r.Experiment.repairs = 0);
  Alcotest.(check (option bool)) "view verified against recomputation"
    (Some true) m.Experiment.verified

let test_experiment_crash_determinism () =
  Task.reset_ids ();
  let a = Experiment.run (crashy_cfg ()) in
  Task.reset_ids ();
  let b = Experiment.run (crashy_cfg ()) in
  Alcotest.(check string) "same seed, same crash, byte-identical metrics"
    (Strip_obs.Json.to_string (Report.metrics_json a))
    (Strip_obs.Json.to_string (Report.metrics_json b))

let test_crash_free_run_has_no_recovery_surface () =
  Task.reset_ids ();
  let cfg =
    Experiment.quick
      (Experiment.default_config
         (Experiment.Comp_view Comp_rules.Unique_on_symbol) ~delay:1.0)
      0.02
  in
  let m = Experiment.run cfg in
  Alcotest.(check bool) "no recovery block without a recovery config" true
    (m.Experiment.recovery = None);
  let json = Strip_obs.Json.to_string (Report.metrics_json m) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    nn = 0 || at 0
  in
  Alcotest.(check bool) "JSON carries no recovery member" false
    (contains json "\"recovery\"")

(* ------------------------------------------------------------------ *)
(* Temp_table.absorb into a fully-materialized destination (recovered
   TCBs carry no record pointers) *)

(* ------------------------------------------------------------------ *)
(* Causal tracing: a queued batch's trace context survives crash+restart *)

let test_trace_ctx_survives_recovery () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let tr1 = Strip_obs.Trace.create () in
  let db1 = Strip_db.create ~durable ~trace:tr1 () in
  Strip_db.exec_script db1 figure4_script;
  Strip_db.declare_view db1 ~sql:comp_view_sql;
  install_comp_rule db1;
  (* checkpoint first: the enqueue and its WAL trace note land after the
     checkpoint LSN, so recovery replays both *)
  Strip_db.checkpoint db1;
  Strip_db.submit_update db1 ~at:0.0 (fun txn ->
      ignore
        (Transaction.exec txn "update stocks set price = 31.0 where symbol = 'S1'"));
  (* stop before the batch's 1 s release: it is still queued at the crash *)
  Strip_db.run db1 ~until:0.5;
  let uq_notes =
    List.filter_map
      (fun (_, r) ->
        match r with
        | Wal.Trace_note { subject = Wal.For_uq _; trace; span } ->
          Some (trace, span)
        | _ -> None)
      (Wal.read (Durable.wal durable)).Wal.records
  in
  let otrace, ospan =
    match uq_notes with
    | [ x ] -> x
    | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 For_uq trace note, got %d" (List.length l))
  in
  Strip_db.crash db1;
  let tr2 = Strip_obs.Trace.create () in
  let db2 = Strip_db.create ~now:0.5 ~durable ~trace:tr2 () in
  ignore (Recovery.recover db2 ~reinstall:(fun () -> install_comp_rule db2));
  Strip_db.run db2;
  (* the resubmitted batch's events on the restarted node stay inside the
     pre-crash trace, parent-linked to the original enqueue span *)
  let linked =
    List.exists
      (fun (e : Strip_obs.Trace.event) ->
        List.mem ("trace", Strip_obs.Trace.Int otrace) e.Strip_obs.Trace.args
        && List.mem ("parent", Strip_obs.Trace.Int ospan) e.Strip_obs.Trace.args)
      (Strip_obs.Trace.events tr2)
  in
  Alcotest.(check bool) "restart continues the pre-crash trace" true linked;
  Alcotest.(check int) "and the recovered view is correct" 0
    (List.length (Auditor.audit db2).Auditor.divergences)

let test_absorb_into_materialized () =
  let schema = Schema.of_list [ ("k", Value.TInt); ("v", Value.TFloat) ] in
  let dst = Temp_table.create_materialized ~name:"dst" ~schema in
  Temp_table.append_values dst [| Value.Int 1; Value.Float 1.0 |];
  (* a pointer-carrying source, as a live merge would produce *)
  let rec1 = Record.create [| Value.Int 2; Value.Float 2.0 |] in
  let src =
    Temp_table.create ~name:"src" ~schema ~nslots:1
      ~prov:[| Temp_table.From_record (0, 0); Temp_table.From_record (0, 1) |]
  in
  Temp_table.append src ~srcs:[| rec1 |] ~mats:[||];
  Temp_table.absorb dst src;
  Alcotest.(check int) "rows copied by value" 2 (Temp_table.cardinal dst);
  Alcotest.(check bool) "source emptied" true (Temp_table.cardinal src = 0);
  Alcotest.(check bool) "values materialized in the destination" true
    (Temp_table.to_rows dst
    = [
        [| Value.Int 1; Value.Float 1.0 |]; [| Value.Int 2; Value.Float 2.0 |];
      ])

let suite =
  [
    ( "recovery/wal",
      [
        Alcotest.test_case "record round-trip" `Quick test_wal_roundtrip;
        Alcotest.test_case "tlog ops preserve execute_order" `Quick
          test_wal_ops_of_tlog_order;
        Alcotest.test_case "crash loses the unsynced tail" `Quick
          test_wal_lose_tail;
        Alcotest.test_case "torn tail dropped" `Quick test_wal_torn_tail;
        Alcotest.test_case "tail cut at frame boundary is clean" `Quick
          test_wal_tail_cut_at_frame_boundary;
        Alcotest.test_case "append_batch equivalence" `Quick
          test_wal_append_batch_equivalence;
        Alcotest.test_case "mid-log corruption stops the scan" `Quick
          test_wal_mid_log_corruption;
        Alcotest.test_case "truncation behind a checkpoint" `Quick
          test_wal_truncate;
      ] );
    ( "recovery/checkpoint",
      [
        Alcotest.test_case "fuzzy checkpoint round-trip" `Quick
          test_checkpoint_roundtrip;
      ] );
    ( "recovery/restart",
      [
        Alcotest.test_case "exactly-once across a crash" `Quick
          test_crash_recovery_exactly_once;
        Alcotest.test_case "redo reproduces committed base state" `Quick
          test_recovered_base_equals_pre_crash;
        Alcotest.test_case "discard_all drains parked waiters" `Quick
          test_discard_all_drains_parked_waiters;
        Alcotest.test_case "absorb into a materialized TCB" `Quick
          test_absorb_into_materialized;
        Alcotest.test_case "trace context survives crash+restart" `Quick
          test_trace_ctx_survives_recovery;
      ] );
    ( "recovery/auditor",
      [
        Alcotest.test_case "detects and repairs a damaged view" `Quick
          test_auditor_detects_and_repairs;
        Alcotest.test_case "view filter" `Quick test_auditor_view_filter;
      ] );
    ( "recovery/experiment",
      [
        Alcotest.test_case "crash-restart loop recovers and audits clean"
          `Slow test_experiment_crash_recovery;
        Alcotest.test_case "crashy runs are deterministic" `Slow
          test_experiment_crash_determinism;
        Alcotest.test_case "crash-free runs expose no recovery surface" `Slow
          test_crash_free_run_has_no_recovery_surface;
      ] );
  ]
