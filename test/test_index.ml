open Strip_relational

let rec_ vals = Record.create vals

let test_hash_multi () =
  let idx = Index.create ~name:"i" ~kind:Index.Hash ~cols:[| 0 |] () in
  let r1 = rec_ [| Value.Str "a"; Value.Int 1 |] in
  let r2 = rec_ [| Value.Str "a"; Value.Int 2 |] in
  let r3 = rec_ [| Value.Str "b"; Value.Int 3 |] in
  Index.add idx r1;
  Index.add idx r2;
  Index.add idx r3;
  Alcotest.(check int) "cardinal" 3 (Index.cardinal idx);
  Alcotest.(check int) "distinct" 2 (Index.distinct_keys idx);
  Alcotest.(check int) "postings for a" 2
    (List.length (Index.lookup idx [ Value.Str "a" ]));
  Index.remove idx r1;
  Alcotest.(check int) "after remove" 1
    (List.length (Index.lookup idx [ Value.Str "a" ]));
  Alcotest.(check bool) "right record stays" true
    (List.exists (fun (r : Record.t) -> r.Record.rid = r2.Record.rid)
       (Index.lookup idx [ Value.Str "a" ]));
  Index.remove idx r2;
  Alcotest.(check (list Alcotest.reject)) "empty postings" []
    (Index.lookup idx [ Value.Str "a" ])

let test_composite_key () =
  let idx = Index.create ~name:"i" ~kind:Index.Hash ~cols:[| 1; 0 |] () in
  let r = rec_ [| Value.Str "x"; Value.Int 5 |] in
  Index.add idx r;
  Alcotest.(check int) "composite lookup" 1
    (List.length (Index.lookup idx [ Value.Int 5; Value.Str "x" ]));
  Alcotest.(check int) "wrong order misses" 0
    (List.length (Index.lookup idx [ Value.Str "x"; Value.Int 5 ]))

let test_ordered_range () =
  let idx = Index.create ~name:"i" ~kind:Index.Ordered ~cols:[| 0 |] () in
  List.iter
    (fun i -> Index.add idx (rec_ [| Value.Int i |]))
    [ 5; 3; 9; 1; 7; 3 ];
  let keys = ref [] in
  Index.range idx
    ~lo:[ Value.Int 3 ] ~hi:[ Value.Int 7 ]
    (fun r -> keys := Value.to_int (Record.value r 0) :: !keys);
  Alcotest.(check (list int)) "ascending, dup keys kept" [ 3; 3; 5; 7 ]
    (List.rev !keys);
  Alcotest.(check int) "distinct" 5 (Index.distinct_keys idx)

let test_range_on_hash_rejected () =
  let idx = Index.create ~name:"i" ~kind:Index.Hash ~cols:[| 0 |] () in
  match Index.range idx (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "range over hash index should be rejected"

let test_numeric_coercion_in_keys () =
  (* Int and Float keys that are numerically equal must collide, matching
     Value.equal/hash. *)
  let idx = Index.create ~name:"i" ~kind:Index.Hash ~cols:[| 0 |] () in
  Index.add idx (rec_ [| Value.Int 2 |]);
  Alcotest.(check int) "float probe finds int key" 1
    (List.length (Index.lookup idx [ Value.Float 2.0 ]))

let test_meter_ticks () =
  Meter.reset ();
  let idx = Index.create ~name:"i" ~kind:Index.Hash ~cols:[| 0 |] () in
  let r = rec_ [| Value.Int 1 |] in
  Index.add idx r;
  ignore (Index.lookup idx [ Value.Int 1 ]);
  Alcotest.(check int) "index_update ticked" 1 (Meter.get "index_update");
  Alcotest.(check int) "index_probe ticked" 1 (Meter.get "index_probe")

let suite =
  [
    ( "index",
      [
        Alcotest.test_case "hash multimap" `Quick test_hash_multi;
        Alcotest.test_case "composite keys" `Quick test_composite_key;
        Alcotest.test_case "ordered range" `Quick test_ordered_range;
        Alcotest.test_case "range on hash rejected" `Quick test_range_on_hash_rejected;
        Alcotest.test_case "numeric key coercion" `Quick test_numeric_coercion_in_keys;
        Alcotest.test_case "metering" `Quick test_meter_ticks;
      ] );
  ]
