open Strip_core
open Strip_market
open Strip_pta

(* Small but non-trivial scale: ~3k updates over 90 s, 20 composites of 200
   stocks, 2.5k options. *)
let scale = 0.05

let quick rule delay = Experiment.quick (Experiment.default_config rule ~delay) scale

let run rule delay = Experiment.run (quick rule delay)

let test_populate_shapes () =
  let db = Strip_db.create () in
  let feed = Feed.scaled Feed.default_config scale in
  let sizes = Pta_tables.scaled_sizes Pta_tables.default_sizes scale in
  let h = Pta_tables.populate db ~feed sizes in
  Alcotest.(check int) "stocks" 6600 (Strip_relational.Table.cardinal h.Pta_tables.stocks);
  Alcotest.(check int) "stdev rows" 6600
    (Strip_relational.Table.cardinal h.Pta_tables.stock_stdev);
  Alcotest.(check int) "memberships" (20 * 200)
    (Strip_relational.Table.cardinal h.Pta_tables.comps_list);
  Alcotest.(check int) "composites" 20
    (Strip_relational.Table.cardinal h.Pta_tables.comp_prices);
  Alcotest.(check int) "options" 2500
    (Strip_relational.Table.cardinal h.Pta_tables.options_list);
  Alcotest.(check int) "option prices" 2500
    (Strip_relational.Table.cardinal h.Pta_tables.option_prices);
  (* the views start out consistent with their definitions *)
  let worst =
    List.fold_left2
      (fun w (_, a) (_, b) -> Float.max w (Float.abs (a -. b)))
      0.0
      (Comp_rules.recompute_from_scratch h)
      (Comp_rules.maintained h)
  in
  Alcotest.(check bool) "comp view initialized correctly" true (worst < 1e-6);
  let worst =
    List.fold_left2
      (fun w (_, a) (_, b) -> Float.max w (Float.abs (a -. b)))
      0.0
      (Option_rules.recompute_from_scratch h)
      (Option_rules.maintained h)
  in
  Alcotest.(check bool) "option view initialized correctly" true (worst < 1e-9)

let check_verified (m : Experiment.metrics) =
  Alcotest.(check (option bool))
    (Printf.sprintf "%s@%.1f verified" m.Experiment.label m.Experiment.delay)
    (Some true) m.Experiment.verified

(* Every batching variant must leave the views exactly consistent. *)
let test_comp_variants_correct () =
  List.iter
    (fun v -> check_verified (run (Experiment.Comp_view v) 1.0))
    Comp_rules.all_variants

let test_option_variants_correct () =
  List.iter
    (fun v -> check_verified (run (Experiment.Option_view v) 1.0))
    Option_rules.all_variants

let test_option_per_option_batching_correct () =
  (* the variant the paper dropped from its graphs still has to be right *)
  check_verified (run (Experiment.Option_view Option_rules.Unique_on_option) 1.0)

let test_batching_relationships () =
  let nu = run (Experiment.Comp_view Comp_rules.Non_unique) 0.0 in
  let coarse = run (Experiment.Comp_view Comp_rules.Unique_coarse) 2.0 in
  let on_comp = run (Experiment.Comp_view Comp_rules.Unique_on_comp) 2.0 in
  (* one recompute per update transaction without batching *)
  Alcotest.(check int) "N_r = firings (non-unique)" nu.Experiment.n_firings
    nu.Experiment.n_recompute;
  Alcotest.(check int) "no merges without unique" 0 nu.Experiment.n_merges;
  (* coarse runs the fewest transactions *)
  Alcotest.(check bool) "coarse N_r smallest" true
    (coarse.Experiment.n_recompute < on_comp.Experiment.n_recompute
    && coarse.Experiment.n_recompute < nu.Experiment.n_recompute);
  Alcotest.(check bool) "coarse merges heavily" true
    (coarse.Experiment.n_merges > nu.Experiment.n_updates / 2);
  (* batching on composite yields far shorter transactions than coarse *)
  Alcotest.(check bool) "on-comp transactions much shorter" true
    (on_comp.Experiment.mean_recompute_us *. 10.0
    < coarse.Experiment.mean_recompute_us);
  (* every update transaction ran *)
  Alcotest.(check bool) "updates all executed" true
    (nu.Experiment.n_updates > 2000)

let test_delay_reduces_recomputations () =
  let short = run (Experiment.Comp_view Comp_rules.Unique_on_comp) 0.5 in
  let long = run (Experiment.Comp_view Comp_rules.Unique_on_comp) 3.0 in
  Alcotest.(check bool) "longer window, fewer recomputations" true
    (long.Experiment.n_recompute < short.Experiment.n_recompute);
  Alcotest.(check bool) "longer window, more merges" true
    (long.Experiment.n_merges > short.Experiment.n_merges)

let test_rule_texts_parse () =
  (* the texts we install are valid Figure-2 DDL *)
  List.iter
    (fun v ->
      ignore (Rule_parser.parse (Comp_rules.rule_text v ~delay:1.0)))
    Comp_rules.all_variants;
  List.iter
    (fun v ->
      ignore (Rule_parser.parse (Option_rules.rule_text v ~delay:1.0)))
    (Option_rules.all_variants @ [ Option_rules.Unique_on_option ])

let test_experiment_determinism () =
  (* identical configs yield identical simulated metrics, bit for bit *)
  let cfg =
    Experiment.quick
      (Experiment.default_config (Experiment.Comp_view Comp_rules.Unique_on_comp)
         ~delay:1.0)
      0.02
  in
  let a = Experiment.run cfg and b = Experiment.run cfg in
  Alcotest.(check int) "N_r" a.Experiment.n_recompute b.Experiment.n_recompute;
  Alcotest.(check int) "merges" a.Experiment.n_merges b.Experiment.n_merges;
  Alcotest.(check (float 0.0)) "utilization" a.Experiment.utilization
    b.Experiment.utilization;
  Alcotest.(check (float 0.0)) "mean length" a.Experiment.mean_recompute_us
    b.Experiment.mean_recompute_us

let test_multi_server_determinism () =
  (* satellite of PR 3: the determinism guarantee must survive both real
     lock arbitration (4 servers) and overload shedding (tiny watermark),
     where wake order and victim selection could otherwise depend on
     hash-table iteration.  Compare the full JSON reports byte for byte. *)
  let run cfg =
    Strip_txn.Task.reset_ids ();
    Strip_obs.Json.to_string (Report.metrics_json (Experiment.run cfg))
  in
  let base =
    Experiment.quick
      (Experiment.default_config (Experiment.Comp_view Comp_rules.Unique_on_comp)
         ~delay:1.0)
      0.02
  in
  let multi = { base with Experiment.servers = 4 } in
  Alcotest.(check string) "4-server report byte-identical" (run multi)
    (run multi);
  let overloaded =
    {
      base with
      Experiment.servers = 4;
      overload =
        Some
          {
            Strip_sim.Engine.high_watermark = 4;
            shed_policy = Strip_sim.Engine.Coalesce;
          };
    }
  in
  Alcotest.(check string) "overloaded report byte-identical" (run overloaded)
    (run overloaded)

let test_index_join_differential_reports () =
  (* The physical index-probe path is a pure-speed rework: forcing the
     executor onto the hash-build fallback must leave every scenario's
     full JSON report byte-identical, across all batching variants. *)
  let report rule =
    Strip_txn.Task.reset_ids ();
    let cfg =
      Experiment.quick (Experiment.default_config rule ~delay:1.0) 0.02
    in
    Strip_obs.Json.to_string (Report.metrics_json (Experiment.run cfg))
  in
  let scenarios =
    List.map (fun v -> Experiment.Comp_view v) Comp_rules.all_variants
    @ List.map
        (fun v -> Experiment.Option_view v)
        (Option_rules.all_variants @ [ Option_rules.Unique_on_option ])
  in
  List.iteri
    (fun i rule ->
      let fast = report rule in
      Strip_relational.Query.physical_index_join := false;
      let slow =
        Fun.protect
          ~finally:(fun () ->
            Strip_relational.Query.physical_index_join := true)
          (fun () -> report rule)
      in
      Alcotest.(check string)
        (Printf.sprintf "scenario %d report byte-identical" i)
        fast slow)
    scenarios

let test_fanout_measures () =
  let db = Strip_db.create () in
  let feed = Feed.scaled Feed.default_config scale in
  let sizes = Pta_tables.scaled_sizes Pta_tables.default_sizes scale in
  let h = Pta_tables.populate db ~feed sizes in
  let weights = Feed.activity_weights feed in
  let comps = Pta_tables.expected_comps_per_update h ~weights in
  let opts = Pta_tables.expected_options_per_update h ~weights in
  (* activity-weighted membership means E[fanout/update] exceeds the
     uniform expectation *)
  Alcotest.(check bool) "comps fanout positive" true (comps > 0.2);
  Alcotest.(check bool) "options fanout exceeds uniform" true
    (opts > float_of_int 2500 /. 6600.0)

let suite =
  [
    ( "pta",
      [
        Alcotest.test_case "population shapes + initial views" `Slow test_populate_shapes;
        Alcotest.test_case "comp variants maintain correctly" `Slow
          test_comp_variants_correct;
        Alcotest.test_case "option variants maintain correctly" `Slow
          test_option_variants_correct;
        Alcotest.test_case "per-option batching correct" `Slow
          test_option_per_option_batching_correct;
        Alcotest.test_case "batching relationships" `Slow test_batching_relationships;
        Alcotest.test_case "delay reduces recomputations" `Slow
          test_delay_reduces_recomputations;
        Alcotest.test_case "installed rule texts are valid DDL" `Quick
          test_rule_texts_parse;
        Alcotest.test_case "experiments are deterministic" `Slow
          test_experiment_determinism;
        Alcotest.test_case "multi-server + overloaded runs deterministic" `Slow
          test_multi_server_determinism;
        Alcotest.test_case "index-join fallback reports byte-identical" `Slow
          test_index_join_differential_reports;
        Alcotest.test_case "fanout statistics" `Slow test_fanout_measures;
      ] );
  ]
