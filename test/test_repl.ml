(* Replication: WAL cursor reads, the simulated shipping link, idempotent
   replica apply under duplication/reordering/truncation, deterministic
   failover promotion, and read routing policies. *)

open Strip_relational
open Strip_txn
open Strip_core
open Strip_pta
open Strip_repl

(* ------------------------------------------------------------------ *)
(* Wal.read_from: the shipping/redo cursor *)

let test_wal_read_from () =
  let w = Wal.create () in
  let lsns = List.map (Wal.append w) Test_recovery.sample_records in
  Wal.fsync w;
  let mid = List.nth lsns 2 in
  let r = Wal.read_from w ~lsn:mid in
  Alcotest.(check (option int)) "clean tail" None r.Wal.torn_at;
  Alcotest.(check (list int)) "only records at or past the cursor"
    (List.filter (fun l -> l >= mid) lsns)
    (List.map fst r.Wal.records);
  List.iter2
    (fun expected (_, got) ->
      Alcotest.(check bool) "suffix records round-trip" true (expected = got))
    (List.filteri (fun i _ -> List.nth lsns i >= mid)
       Test_recovery.sample_records)
    r.Wal.records;
  Alcotest.(check (list int)) "cursor at the base is a full read"
    (List.map fst (Wal.read w).Wal.records)
    (List.map fst (Wal.read_from w ~lsn:(Wal.base_lsn w)).Wal.records);
  Alcotest.(check int) "cursor at the end reads nothing" 0
    (List.length (Wal.read_from w ~lsn:(Wal.durable_end w)).Wal.records);
  let rejected lsn =
    match Wal.read_from w ~lsn with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "cursor before the base rejected" true (rejected (-1));
  Alcotest.(check bool) "cursor past the end rejected" true
    (rejected (Wal.durable_end w + 1));
  (* truncation moves the validity window with the base *)
  Wal.truncate_to w ~lsn:mid;
  Alcotest.(check bool) "cursor below the new base rejected" true (rejected 0);
  Alcotest.(check int) "suffix still readable after truncation"
    (List.length (List.filter (fun l -> l >= mid) lsns))
    (List.length (Wal.read_from w ~lsn:mid).Wal.records)

let test_wal_slice_install_roundtrip () =
  let w = Wal.create () in
  let lsns = List.map (Wal.append w) Test_recovery.sample_records in
  Wal.fsync w;
  let mid = List.nth lsns 2 in
  (* a replica's log is literally the primary's bytes from its bootstrap
     LSN on: slice here, install into a fresh log based there *)
  let w2 = Wal.create ~base_lsn:mid () in
  Wal.install_bytes w2 (Wal.durable_slice w ~from_lsn:mid);
  let a = Wal.read_from w ~lsn:mid and b = Wal.read w2 in
  Alcotest.(check (list int)) "same LSNs" (List.map fst a.Wal.records)
    (List.map fst b.Wal.records);
  Alcotest.(check bool) "same records" true
    (List.map snd a.Wal.records = List.map snd b.Wal.records);
  Alcotest.(check int) "same end" (Wal.durable_end w) (Wal.durable_end w2)

(* ------------------------------------------------------------------ *)
(* Link: deterministic delivery, serialization reordering, drops *)

let seg ~from_lsn bytes = Link.Segment { from_lsn; bytes }

let test_link_delivery_order () =
  let cfg =
    {
      Link.latency_s = 0.01;
      bandwidth_bps = 100.0;
      drop_rate = 0.0;
      seed = 1;
    }
  in
  let l = Link.create cfg in
  (* 100 bytes at 100 B/s serializes for 1 s; a later 1-byte message
     overtakes it *)
  Link.send l ~now:0.0 (seg ~from_lsn:0 (String.make 100 'x'));
  Link.send l ~now:0.5 (seg ~from_lsn:100 "y");
  Alcotest.(check bool) "nothing before the first arrival" true
    (Link.pop_arrived l ~now:0.4 = None);
  (match Link.pop_arrived l ~now:2.0 with
  | Some { payload = Link.Segment { from_lsn; _ }; seq; _ } ->
    Alcotest.(check int) "small late message arrives first" 100 from_lsn;
    Alcotest.(check int) "send order preserved in seq" 1 seq
  | _ -> Alcotest.fail "expected the second segment first");
  (match Link.pop_arrived l ~now:2.0 with
  | Some { payload = Link.Segment { from_lsn; _ }; _ } ->
    Alcotest.(check int) "large message arrives second" 0 from_lsn
  | _ -> Alcotest.fail "expected the first segment second");
  Alcotest.(check int) "queue drained" 0 (Link.in_flight l);
  Alcotest.(check int) "both delivered" 2 (Link.n_delivered l)

let test_link_drops_deterministic () =
  let cfg = { Link.default_config with drop_rate = 0.3; seed = 42 } in
  let run () =
    let l = Link.create ~id:3 cfg in
    for i = 0 to 99 do
      Link.send l ~now:(float_of_int i) (seg ~from_lsn:i "z")
    done;
    (Link.n_sent l, Link.n_dropped l)
  in
  let s1, d1 = run () and s2, d2 = run () in
  Alcotest.(check int) "all sends counted" 100 s1;
  Alcotest.(check bool) "some messages dropped" true (d1 > 0 && d1 < 100);
  Alcotest.(check (pair int int)) "same seed, same drops" (s1, d1) (s2, d2)

(* ------------------------------------------------------------------ *)
(* Replica: bootstrap + apply, idempotent under duplication/reordering *)

let update_stock db ~at symbol price =
  Strip_db.submit_update db ~at (fun txn ->
      ignore
        (Transaction.exec txn
           (Printf.sprintf "update stocks set price = %g where symbol = '%s'"
              price symbol)))

let view_rows cat =
  Query.rows
    (Sql_exec.query cat ~env:[]
       "select comp, price from comp_prices order by comp")

let primary_with_tail () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db = Test_recovery.setup_durable_db durable in
  Strip_db.checkpoint db;
  update_stock db ~at:0.0 "S1" 31.0;
  update_stock db ~at:0.3 "S2" 38.0;
  (* run past the 1 s unique delay so the maintenance commit is in the
     log too *)
  Strip_db.run db;
  (db, durable)

let bootstrap_replica durable =
  let image =
    match Durable.snapshot durable with
    | Some s -> s
    | None -> Alcotest.fail "no checkpoint installed"
  in
  Replica.bootstrap ~id:0 ~image ~lsn:(Durable.snapshot_lsn durable) ~time:0.0

let deliver r ~seq ~sent_at payload =
  Replica.receive r
    { Link.sent_at; arrives_at = sent_at +. 0.02; seq; payload }

let test_replica_joins_mid_stream () =
  let db, durable = primary_with_tail () in
  (* the replica joins from the checkpoint image, then receives the log
     tail written after it *)
  let r = bootstrap_replica durable in
  let wal = Durable.wal durable in
  Alcotest.(check bool) "there is a tail to ship" true
    (Wal.durable_end wal > Replica.applied_lsn r);
  let tail = Wal.durable_slice wal ~from_lsn:(Replica.applied_lsn r) in
  deliver r ~seq:0 ~sent_at:1.5 (seg ~from_lsn:(Replica.applied_lsn r) tail);
  Alcotest.(check int) "applied through the primary's durable end"
    (Wal.durable_end wal) (Replica.applied_lsn r);
  Alcotest.(check bool) "commits were replayed" true
    (Replica.n_commits_applied r > 0);
  Alcotest.(check bool) "replica view converged to the primary" true
    (view_rows (Strip_db.catalog db) = view_rows (Replica.catalog r))

let test_replica_duplicate_and_reordered_apply () =
  let db, durable = primary_with_tail () in
  let r = bootstrap_replica durable in
  let wal = Durable.wal durable in
  let base = Replica.applied_lsn r in
  (* cut the tail at a frame boundary *)
  let mid =
    match (Wal.read_from wal ~lsn:base).Wal.records with
    | _ :: (l, _) :: _ -> l
    | _ -> Alcotest.fail "expected at least two tail records"
  in
  let tail = Wal.durable_slice wal ~from_lsn:base in
  let s1 = String.sub tail 0 (mid - base) in
  let s2 = String.sub tail (mid - base) (String.length tail - (mid - base)) in
  (* the second half arrives first: a gap, buffered not applied *)
  deliver r ~seq:1 ~sent_at:1.1 (seg ~from_lsn:mid s2);
  Alcotest.(check int) "gap buffered, nothing applied" base
    (Replica.applied_lsn r);
  Alcotest.(check int) "reordering observed" 1 (Replica.n_reordered r);
  (* the gap fills: both halves apply in order *)
  deliver r ~seq:0 ~sent_at:1.0 (seg ~from_lsn:base s1);
  Alcotest.(check int) "contiguous prefix applied through the end"
    (Wal.durable_end wal) (Replica.applied_lsn r);
  let commits = Replica.n_commits_applied r in
  (* optimistic resend: the same bytes again are recognized and skipped *)
  deliver r ~seq:2 ~sent_at:1.2 (seg ~from_lsn:base s1);
  deliver r ~seq:3 ~sent_at:1.3 (seg ~from_lsn:mid s2);
  Alcotest.(check int) "duplicates counted" 2 (Replica.n_duplicates r);
  Alcotest.(check int) "no commit applied twice" commits
    (Replica.n_commits_applied r);
  Alcotest.(check bool) "state still equals the primary's" true
    (view_rows (Strip_db.catalog db) = view_rows (Replica.catalog r))

let test_replica_reseeds_after_truncation () =
  let db, durable = primary_with_tail () in
  let r = bootstrap_replica durable in
  (* the primary checkpoints again and truncates its log: the bytes the
     replica is missing no longer exist, so it must re-seed from the new
     image *)
  Strip_db.checkpoint db;
  let wal = Durable.wal durable in
  Alcotest.(check bool) "truncation outran the replica" true
    (Wal.base_lsn wal > Replica.applied_lsn r);
  let image = Option.get (Durable.snapshot durable) in
  deliver r ~seq:0 ~sent_at:2.0
    (Link.Bootstrap
       { image; lsn = Durable.snapshot_lsn durable; time = 2.0 });
  Alcotest.(check int) "re-seed counted" 1 (Replica.n_bootstraps r);
  Alcotest.(check int) "caught up to the new image"
    (Durable.snapshot_lsn durable) (Replica.applied_lsn r);
  Alcotest.(check bool) "state equals the primary's" true
    (view_rows (Strip_db.catalog db) = view_rows (Replica.catalog r));
  (* a stale image (at or below the applied frontier) is a duplicate *)
  deliver r ~seq:1 ~sent_at:2.1
    (Link.Bootstrap
       { image; lsn = Durable.snapshot_lsn durable; time = 2.0 });
  Alcotest.(check int) "stale image skipped" 1 (Replica.n_bootstraps r)

let test_replica_heartbeat_staleness () =
  let _db, durable = primary_with_tail () in
  let r = bootstrap_replica durable in
  let wal = Durable.wal durable in
  let tail = Wal.durable_slice wal ~from_lsn:(Replica.applied_lsn r) in
  deliver r ~seq:0 ~sent_at:1.5 (seg ~from_lsn:(Replica.applied_lsn r) tail);
  Alcotest.(check (float 1e-9)) "segment sets the horizon to its send time"
    1.5 (Replica.horizon r);
  (* an empty segment is a heartbeat: no bytes, fresher horizon *)
  deliver r ~seq:1 ~sent_at:5.0 (seg ~from_lsn:(Replica.applied_lsn r) "");
  Alcotest.(check (float 1e-9)) "heartbeat advances the horizon" 5.0
    (Replica.horizon r);
  Alcotest.(check (float 1e-9)) "staleness measures from the horizon" 0.1
    (Replica.staleness r ~now:5.1);
  Alcotest.(check bool) "staleness is positive under link latency" true
    (Replica.staleness r ~now:(5.0 +. 0.02) > 0.0)

(* ------------------------------------------------------------------ *)
(* Cluster: shipping convergence and deterministic promotion *)

let test_promotion_tie_break () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db = Test_recovery.setup_durable_db durable in
  Strip_db.checkpoint db;
  update_stock db ~at:0.0 "S1" 31.0;
  update_stock db ~at:0.3 "S2" 38.0;
  let cfg = { Cluster.default_config with n_replicas = 2 } in
  let c =
    Cluster.create cfg ~primary:db ~read_table:"comp_prices"
      ~read_key_col:"comp" ~read_keys:[| "C1"; "C2" |] ~read_until:0.0
  in
  Cluster.schedule_shipping c ~until:3.0;
  Strip_db.run db ~until:3.0;
  Strip_db.crash db;
  (* identical links, no drops: both replicas hold the same applied LSN,
     so the election must break the tie toward the lowest id *)
  Alcotest.(check int) "replicas tied"
    (Replica.applied_lsn (Cluster.replica c 0))
    (Replica.applied_lsn (Cluster.replica c 1));
  let ndb, _rs, p =
    Cluster.promote c ~now:3.0
      ~mk_db:(fun dur -> Strip_db.create ~now:3.0 ~durable:dur ())
      ~reinstall:(fun ndb -> Test_recovery.install_comp_rule ndb)
  in
  Alcotest.(check int) "lowest id wins the tie" 0 p.Cluster.promoted;
  Alcotest.(check int) "nothing durable was lost" 0 p.Cluster.lost_bytes;
  Alcotest.(check int) "one failover counted" 1 (Cluster.n_failovers c);
  Alcotest.(check bool) "cluster repointed" true (Cluster.primary c == ndb);
  Strip_db.run ndb;
  Alcotest.(check int) "promoted primary audits clean" 0
    (List.length (Auditor.audit ndb).Auditor.divergences);
  Alcotest.(check bool) "promoted view matches the old primary's" true
    (view_rows (Strip_db.catalog db) = view_rows (Strip_db.catalog ndb))

(* ------------------------------------------------------------------ *)
(* End-to-end: experiment failover loop, routing policies, determinism *)

let with_repl ?(policy = Cluster.Bounded_staleness 0.5) ?(rate = 25.0)
    (cfg : Experiment.config) : Experiment.config =
  {
    cfg with
    Experiment.repl =
      Some
        ({
           Experiment.default_repl with
           Experiment.replicas = 2;
           read_policy = policy;
           read_rate = rate;
         }
          : Experiment.repl_cfg);
  }

let test_experiment_failover () =
  Task.reset_ids ();
  let m = Experiment.run (with_repl (Test_recovery.crashy_cfg ())) in
  let r = Option.get m.Experiment.repl in
  let rc = Option.get m.Experiment.recovery in
  Alcotest.(check int) "the crash became a failover" 1 r.Experiment.n_failovers;
  Alcotest.(check int) "both replicas reported" 2
    (List.length r.Experiment.per_replica);
  Alcotest.(check bool) "reads were served" true (r.Experiment.n_reads > 0);
  Alcotest.(check bool) "replicas converged to the final primary" true
    (List.for_all
       (fun (pr : Experiment.replica_metrics) ->
         pr.Experiment.r_applied_lsn > 0)
       r.Experiment.per_replica);
  Alcotest.(check bool) "audit clean without repairs" true
    (rc.Experiment.audit_clean && rc.Experiment.repairs = 0);
  Alcotest.(check (option bool)) "view verified against recomputation"
    (Some true) m.Experiment.verified

let test_experiment_failover_determinism () =
  Task.reset_ids ();
  let a = Experiment.run (with_repl (Test_recovery.crashy_cfg ())) in
  Task.reset_ids ();
  let b = Experiment.run (with_repl (Test_recovery.crashy_cfg ())) in
  Alcotest.(check string) "same seed, same failover, byte-identical metrics"
    (Strip_obs.Json.to_string (Report.metrics_json a))
    (Strip_obs.Json.to_string (Report.metrics_json b))

let quick_cfg () =
  Experiment.quick
    (Experiment.default_config
       (Experiment.Comp_view Comp_rules.Unique_on_symbol) ~delay:1.0)
    0.02

let test_bounded_zero_always_primary () =
  Task.reset_ids ();
  let m =
    Experiment.run
      (with_repl ~policy:(Cluster.Bounded_staleness 0.0) (quick_cfg ()))
  in
  let r = Option.get m.Experiment.repl in
  Alcotest.(check bool) "reads ran" true (r.Experiment.n_reads > 0);
  Alcotest.(check int) "bounded:0 never elects a replica" 0
    r.Experiment.reads_replica;
  Alcotest.(check int) "every read fell through to the primary"
    r.Experiment.n_reads r.Experiment.reads_primary

let test_any_policy_spreads_reads () =
  Task.reset_ids ();
  let m = Experiment.run (with_repl ~policy:Cluster.Any (quick_cfg ())) in
  let r = Option.get m.Experiment.repl in
  Alcotest.(check bool) "replicas served reads" true
    (r.Experiment.reads_replica > 0);
  Alcotest.(check bool) "primary served its round-robin share" true
    (r.Experiment.reads_primary > 0)

let test_no_repl_surface_without_config () =
  Task.reset_ids ();
  let m = Experiment.run (quick_cfg ()) in
  Alcotest.(check bool) "no repl block without a repl config" true
    (m.Experiment.repl = None);
  let json = Strip_obs.Json.to_string (Report.metrics_json m) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    nn = 0 || at 0
  in
  Alcotest.(check bool) "JSON carries no replication member" false
    (contains json "\"replication\"");
  Task.reset_ids ();
  let mr = Experiment.run (with_repl (quick_cfg ())) in
  Alcotest.(check bool) "JSON carries the member when configured" true
    (contains
       (Strip_obs.Json.to_string (Report.metrics_json mr))
       "\"replication\"")

let suite =
  [
    ( "repl/wal",
      [
        Alcotest.test_case "read_from cursor" `Quick test_wal_read_from;
        Alcotest.test_case "slice/install round-trip" `Quick
          test_wal_slice_install_roundtrip;
      ] );
    ( "repl/link",
      [
        Alcotest.test_case "delivery order under serialization" `Quick
          test_link_delivery_order;
        Alcotest.test_case "drops are deterministic" `Quick
          test_link_drops_deterministic;
      ] );
    ( "repl/replica",
      [
        Alcotest.test_case "joins mid-stream from a checkpoint" `Quick
          test_replica_joins_mid_stream;
        Alcotest.test_case "duplicate/reordered delivery is idempotent"
          `Quick test_replica_duplicate_and_reordered_apply;
        Alcotest.test_case "re-seeds after checkpoint truncation" `Quick
          test_replica_reseeds_after_truncation;
        Alcotest.test_case "heartbeats advance the staleness horizon" `Quick
          test_replica_heartbeat_staleness;
      ] );
    ( "repl/cluster",
      [
        Alcotest.test_case "promotion breaks LSN ties by lowest id" `Quick
          test_promotion_tie_break;
      ] );
    ( "repl/experiment",
      [
        Alcotest.test_case "failover recovers and audits clean" `Slow
          test_experiment_failover;
        Alcotest.test_case "failover runs are deterministic" `Slow
          test_experiment_failover_determinism;
        Alcotest.test_case "bounded:0 always reads the primary" `Slow
          test_bounded_zero_always_primary;
        Alcotest.test_case "any policy spreads reads over all lanes" `Slow
          test_any_policy_spreads_reads;
        Alcotest.test_case "unreplicated runs expose no repl surface" `Slow
          test_no_repl_surface_without_config;
      ] );
  ]
