(* Replication: WAL cursor reads, the simulated shipping link, idempotent
   replica apply under duplication/reordering/truncation, deterministic
   failover promotion, and read routing policies. *)

open Strip_relational
open Strip_txn
open Strip_core
open Strip_pta
open Strip_repl

(* ------------------------------------------------------------------ *)
(* Wal.read_from: the shipping/redo cursor *)

let test_wal_read_from () =
  let w = Wal.create () in
  let lsns = List.map (Wal.append w) Test_recovery.sample_records in
  Wal.fsync w;
  let mid = List.nth lsns 2 in
  let r = Wal.read_from w ~lsn:mid in
  Alcotest.(check (option int)) "clean tail" None r.Wal.torn_at;
  Alcotest.(check (list int)) "only records at or past the cursor"
    (List.filter (fun l -> l >= mid) lsns)
    (List.map fst r.Wal.records);
  List.iter2
    (fun expected (_, got) ->
      Alcotest.(check bool) "suffix records round-trip" true (expected = got))
    (List.filteri (fun i _ -> List.nth lsns i >= mid)
       Test_recovery.sample_records)
    r.Wal.records;
  Alcotest.(check (list int)) "cursor at the base is a full read"
    (List.map fst (Wal.read w).Wal.records)
    (List.map fst (Wal.read_from w ~lsn:(Wal.base_lsn w)).Wal.records);
  Alcotest.(check int) "cursor at the end reads nothing" 0
    (List.length (Wal.read_from w ~lsn:(Wal.durable_end w)).Wal.records);
  let rejected lsn =
    match Wal.read_from w ~lsn with
    | exception Wal.Out_of_range _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "cursor before the base rejected" true (rejected (-1));
  Alcotest.(check bool) "cursor past the end rejected" true
    (rejected (Wal.durable_end w + 1));
  (* truncation moves the validity window with the base *)
  Wal.truncate_to w ~lsn:mid;
  Alcotest.(check bool) "cursor below the new base rejected" true (rejected 0);
  Alcotest.(check int) "suffix still readable after truncation"
    (List.length (List.filter (fun l -> l >= mid) lsns))
    (List.length (Wal.read_from w ~lsn:mid).Wal.records)

let test_wal_slice_install_roundtrip () =
  let w = Wal.create () in
  let lsns = List.map (Wal.append w) Test_recovery.sample_records in
  Wal.fsync w;
  let mid = List.nth lsns 2 in
  (* a replica's log is literally the primary's bytes from its bootstrap
     LSN on: slice here, install into a fresh log based there *)
  let w2 = Wal.create ~base_lsn:mid () in
  Wal.install_bytes w2 (Wal.durable_slice w ~from_lsn:mid);
  let a = Wal.read_from w ~lsn:mid and b = Wal.read w2 in
  Alcotest.(check (list int)) "same LSNs" (List.map fst a.Wal.records)
    (List.map fst b.Wal.records);
  Alcotest.(check bool) "same records" true
    (List.map snd a.Wal.records = List.map snd b.Wal.records);
  Alcotest.(check int) "same end" (Wal.durable_end w) (Wal.durable_end w2)

(* ------------------------------------------------------------------ *)
(* Link: deterministic delivery, serialization reordering, drops *)

let seg ~from_lsn bytes = Link.Segment { from_lsn; bytes }

let test_link_delivery_order () =
  let cfg =
    {
      Link.latency_s = 0.01;
      bandwidth_bps = 100.0;
      drop_rate = 0.0;
      seed = 1;
    }
  in
  let l = Link.create cfg in
  (* 100 bytes at 100 B/s serializes for 1 s; a later 1-byte message
     overtakes it *)
  Link.send l ~now:0.0 (seg ~from_lsn:0 (String.make 100 'x'));
  Link.send l ~now:0.5 (seg ~from_lsn:100 "y");
  Alcotest.(check bool) "nothing before the first arrival" true
    (Link.pop_arrived l ~now:0.4 = None);
  (match Link.pop_arrived l ~now:2.0 with
  | Some { payload = Link.Segment { from_lsn; _ }; seq; _ } ->
    Alcotest.(check int) "small late message arrives first" 100 from_lsn;
    Alcotest.(check int) "send order preserved in seq" 1 seq
  | _ -> Alcotest.fail "expected the second segment first");
  (match Link.pop_arrived l ~now:2.0 with
  | Some { payload = Link.Segment { from_lsn; _ }; _ } ->
    Alcotest.(check int) "large message arrives second" 0 from_lsn
  | _ -> Alcotest.fail "expected the first segment second");
  Alcotest.(check int) "queue drained" 0 (Link.in_flight l);
  Alcotest.(check int) "both delivered" 2 (Link.n_delivered l)

let test_link_drops_deterministic () =
  let cfg = { Link.default_config with drop_rate = 0.3; seed = 42 } in
  let run () =
    let l = Link.create ~id:3 cfg in
    for i = 0 to 99 do
      Link.send l ~now:(float_of_int i) (seg ~from_lsn:i "z")
    done;
    (Link.n_sent l, Link.n_dropped l)
  in
  let s1, d1 = run () and s2, d2 = run () in
  Alcotest.(check int) "all sends counted" 100 s1;
  Alcotest.(check bool) "some messages dropped" true (d1 > 0 && d1 < 100);
  Alcotest.(check (pair int int)) "same seed, same drops" (s1, d1) (s2, d2)

let test_link_partition_window () =
  let l = Link.create { Link.default_config with drop_rate = 0.0 } in
  Link.add_partition_window l ~from_s:1.0 ~until_s:2.0;
  Link.send l ~now:0.5 (seg ~from_lsn:0 "a");
  Link.send l ~now:1.0 (seg ~from_lsn:1 "b");
  Link.send l ~now:1.99 (seg ~from_lsn:2 "c");
  Link.send l ~now:2.0 (seg ~from_lsn:3 "d");
  Alcotest.(check int) "sends inside the window are cut" 2
    (Link.n_partition_drops l);
  Alcotest.(check int) "partition drops are not random loss" 0
    (Link.n_dropped l);
  Alcotest.(check int) "sends outside the window survive" 2 (Link.in_flight l);
  Alcotest.(check bool) "window queryable while open" true
    (Link.partitioned l ~now:1.5 ~epoch:0);
  Alcotest.(check bool) "healed at the right (open) edge" false
    (Link.partitioned l ~now:2.0 ~epoch:0)

let test_link_window_boundary_and_rng () =
  (* Regression: the window is half-open [from, until) — a send stamped
     exactly at [until_s] is already healed and must be delivered, while
     the opening edge [from_s] is inside the cut. *)
  let l = Link.create { Link.default_config with drop_rate = 0.0 } in
  Link.add_partition_window l ~from_s:1.0 ~until_s:2.0;
  Link.send l ~now:1.0 (seg ~from_lsn:0 "open-edge");
  Link.send l ~now:2.0 (seg ~from_lsn:1 "close-edge");
  Alcotest.(check int) "from_s is cut" 1 (Link.n_partition_drops l);
  Alcotest.(check int) "until_s is delivered" 1 (Link.in_flight l);
  (match Link.pop_arrived l ~now:10.0 with
  | Some { payload = Link.Segment { from_lsn; _ }; sent_at; _ } ->
    Alcotest.(check int) "the boundary send got through" 1 from_lsn;
    Alcotest.(check (float 0.0)) "stamped at the boundary" 2.0 sent_at
  | _ -> Alcotest.fail "boundary send lost");
  (* Partitioned sends must still consume their RNG draw: the loss
     pattern after the window matches a windowless link send-for-send. *)
  let cfg = { Link.default_config with drop_rate = 0.5; seed = 11 } in
  let outcomes with_window =
    let l = Link.create ~id:9 cfg in
    if with_window then Link.add_partition_window l ~from_s:2.0 ~until_s:5.0;
    List.init 10 (fun i ->
        let d0 = Link.n_dropped l and f0 = Link.in_flight l in
        Link.send l ~now:(float_of_int i) (seg ~from_lsn:i "r");
        if Link.n_dropped l > d0 then "dropped"
        else if Link.in_flight l > f0 then "delivered"
        else "cut")
  in
  let windowless = outcomes false and windowed = outcomes true in
  List.iteri
    (fun i (a, b) ->
      if float_of_int i < 2.0 || float_of_int i >= 5.0 then
        Alcotest.(check string)
          (Printf.sprintf "send %d: same fate with and without window" i)
          a b
      else
        Alcotest.(check string)
          (Printf.sprintf "send %d: cut by the window" i)
          "cut" b)
    (List.combine windowless windowed)

let test_link_epoch_tagged_window () =
  let l = Link.create { Link.default_config with drop_rate = 0.0 } in
  (* fence only term 1: the deposed primary's traffic dies on the wire
     while the new term flows over the same link *)
  Link.add_partition_window ~only_epoch:1 l ~from_s:0.0 ~until_s:10.0;
  Link.send ~epoch:1 l ~now:1.0 (seg ~from_lsn:0 "old");
  Link.send ~epoch:2 l ~now:1.0 (seg ~from_lsn:0 "new");
  Alcotest.(check int) "the old term is cut" 1 (Link.n_partition_drops l);
  Alcotest.(check int) "the new term flows" 1 (Link.in_flight l);
  Alcotest.(check bool) "window holds for the tagged epoch" true
    (Link.partitioned l ~now:5.0 ~epoch:1);
  Alcotest.(check bool) "window ignores other epochs" false
    (Link.partitioned l ~now:5.0 ~epoch:2)

let test_link_drop_burst () =
  let l = Link.create { Link.default_config with drop_rate = 0.0 } in
  Link.add_drop_burst l ~from_s:10.0 ~until_s:20.0 ~rate:1.0;
  for i = 0 to 29 do
    Link.send l ~now:(float_of_int i) (seg ~from_lsn:i "x")
  done;
  Alcotest.(check int) "only sends inside the burst were dropped" 10
    (Link.n_dropped l);
  Alcotest.(check int) "bursts are random loss, not partition drops" 0
    (Link.n_partition_drops l);
  Alcotest.(check int) "the rest are in flight" 20 (Link.in_flight l);
  Alcotest.(check bool) "burst rate is validated" true
    (match Link.add_drop_burst l ~from_s:0.0 ~until_s:1.0 ~rate:1.5 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_link_random_windows () =
  let gen seed =
    Link.random_windows ~seed ~rate_per_s:0.2 ~mean_s:1.0 ~until:60.0
  in
  let a = gen 5 in
  Alcotest.(check bool) "pure in the seed" true (a = gen 5);
  Alcotest.(check bool) "some windows generated" true (a <> []);
  List.iter
    (fun (f, u) ->
      Alcotest.(check bool) "ordered and clipped to the horizon" true
        (0.0 <= f && f < u && u <= 60.0))
    a;
  Alcotest.(check bool) "a different seed draws differently" true (a <> gen 6)

(* ------------------------------------------------------------------ *)
(* Replica: bootstrap + apply, idempotent under duplication/reordering *)

let update_stock db ~at symbol price =
  Strip_db.submit_update db ~at (fun txn ->
      ignore
        (Transaction.exec txn
           (Printf.sprintf "update stocks set price = %g where symbol = '%s'"
              price symbol)))

let view_rows cat =
  Query.rows
    (Sql_exec.query cat ~env:[]
       "select comp, price from comp_prices order by comp")

let primary_with_tail () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db = Test_recovery.setup_durable_db durable in
  Strip_db.checkpoint db;
  update_stock db ~at:0.0 "S1" 31.0;
  update_stock db ~at:0.3 "S2" 38.0;
  (* run past the 1 s unique delay so the maintenance commit is in the
     log too *)
  Strip_db.run db;
  (db, durable)

let bootstrap_replica durable =
  let image =
    match Durable.snapshot durable with
    | Some s -> s
    | None -> Alcotest.fail "no checkpoint installed"
  in
  Replica.bootstrap ~id:0 ~image ~lsn:(Durable.snapshot_lsn durable) ~time:0.0
    ()

let deliver ?(epoch = 0) r ~seq ~sent_at payload =
  Replica.receive r
    { Link.sent_at; arrives_at = sent_at +. 0.02; seq; epoch; payload }

let test_replica_joins_mid_stream () =
  let db, durable = primary_with_tail () in
  (* the replica joins from the checkpoint image, then receives the log
     tail written after it *)
  let r = bootstrap_replica durable in
  let wal = Durable.wal durable in
  Alcotest.(check bool) "there is a tail to ship" true
    (Wal.durable_end wal > Replica.applied_lsn r);
  let tail = Wal.durable_slice wal ~from_lsn:(Replica.applied_lsn r) in
  deliver r ~seq:0 ~sent_at:1.5 (seg ~from_lsn:(Replica.applied_lsn r) tail);
  Alcotest.(check int) "applied through the primary's durable end"
    (Wal.durable_end wal) (Replica.applied_lsn r);
  Alcotest.(check bool) "commits were replayed" true
    (Replica.n_commits_applied r > 0);
  Alcotest.(check bool) "replica view converged to the primary" true
    (view_rows (Strip_db.catalog db) = view_rows (Replica.catalog r))

let test_replica_duplicate_and_reordered_apply () =
  let db, durable = primary_with_tail () in
  let r = bootstrap_replica durable in
  let wal = Durable.wal durable in
  let base = Replica.applied_lsn r in
  (* cut the tail at a frame boundary *)
  let mid =
    match (Wal.read_from wal ~lsn:base).Wal.records with
    | _ :: (l, _) :: _ -> l
    | _ -> Alcotest.fail "expected at least two tail records"
  in
  let tail = Wal.durable_slice wal ~from_lsn:base in
  let s1 = String.sub tail 0 (mid - base) in
  let s2 = String.sub tail (mid - base) (String.length tail - (mid - base)) in
  (* the second half arrives first: a gap, buffered not applied *)
  deliver r ~seq:1 ~sent_at:1.1 (seg ~from_lsn:mid s2);
  Alcotest.(check int) "gap buffered, nothing applied" base
    (Replica.applied_lsn r);
  Alcotest.(check int) "reordering observed" 1 (Replica.n_reordered r);
  (* the gap fills: both halves apply in order *)
  deliver r ~seq:0 ~sent_at:1.0 (seg ~from_lsn:base s1);
  Alcotest.(check int) "contiguous prefix applied through the end"
    (Wal.durable_end wal) (Replica.applied_lsn r);
  let commits = Replica.n_commits_applied r in
  (* optimistic resend: the same bytes again are recognized and skipped *)
  deliver r ~seq:2 ~sent_at:1.2 (seg ~from_lsn:base s1);
  deliver r ~seq:3 ~sent_at:1.3 (seg ~from_lsn:mid s2);
  Alcotest.(check int) "duplicates counted" 2 (Replica.n_duplicates r);
  Alcotest.(check int) "no commit applied twice" commits
    (Replica.n_commits_applied r);
  Alcotest.(check bool) "state still equals the primary's" true
    (view_rows (Strip_db.catalog db) = view_rows (Replica.catalog r))

let test_replica_reseeds_after_truncation () =
  let db, durable = primary_with_tail () in
  let r = bootstrap_replica durable in
  (* the primary checkpoints again and truncates its log: the bytes the
     replica is missing no longer exist, so it must re-seed from the new
     image *)
  Strip_db.checkpoint db;
  let wal = Durable.wal durable in
  Alcotest.(check bool) "truncation outran the replica" true
    (Wal.base_lsn wal > Replica.applied_lsn r);
  let image = Option.get (Durable.snapshot durable) in
  deliver r ~seq:0 ~sent_at:2.0
    (Link.Bootstrap
       { image; lsn = Durable.snapshot_lsn durable; time = 2.0 });
  Alcotest.(check int) "re-seed counted" 1 (Replica.n_bootstraps r);
  Alcotest.(check int) "caught up to the new image"
    (Durable.snapshot_lsn durable) (Replica.applied_lsn r);
  Alcotest.(check bool) "state equals the primary's" true
    (view_rows (Strip_db.catalog db) = view_rows (Replica.catalog r));
  (* a stale image (at or below the applied frontier) is a duplicate *)
  deliver r ~seq:1 ~sent_at:2.1
    (Link.Bootstrap
       { image; lsn = Durable.snapshot_lsn durable; time = 2.0 });
  Alcotest.(check int) "stale image skipped" 1 (Replica.n_bootstraps r)

let test_replica_heartbeat_staleness () =
  let _db, durable = primary_with_tail () in
  let r = bootstrap_replica durable in
  let wal = Durable.wal durable in
  let tail = Wal.durable_slice wal ~from_lsn:(Replica.applied_lsn r) in
  deliver r ~seq:0 ~sent_at:1.5 (seg ~from_lsn:(Replica.applied_lsn r) tail);
  Alcotest.(check (float 1e-9)) "segment sets the horizon to its send time"
    1.5 (Replica.horizon r);
  (* an empty segment is a heartbeat: no bytes, fresher horizon *)
  deliver r ~seq:1 ~sent_at:5.0 (seg ~from_lsn:(Replica.applied_lsn r) "");
  Alcotest.(check (float 1e-9)) "heartbeat advances the horizon" 5.0
    (Replica.horizon r);
  Alcotest.(check (float 1e-9)) "staleness measures from the horizon" 0.1
    (Replica.staleness r ~now:5.1);
  Alcotest.(check bool) "staleness is positive under link latency" true
    (Replica.staleness r ~now:(5.0 +. 0.02) > 0.0)

let test_replica_fencing () =
  let _db, durable = primary_with_tail () in
  let r = bootstrap_replica durable in
  let wal = Durable.wal durable in
  let base = Replica.applied_lsn r in
  let tail = Wal.durable_slice wal ~from_lsn:base in
  Alcotest.(check int) "bootstrap starts unstamped" 0 (Replica.epoch r);
  (* the replica learns term 2 through the election path, then the
     deposed term-1 primary's segment arrives: fenced, not applied *)
  Replica.note_epoch r 2;
  deliver ~epoch:1 r ~seq:0 ~sent_at:1.0 (seg ~from_lsn:base tail);
  Alcotest.(check int) "stale term fenced" 1 (Replica.n_fenced r);
  Alcotest.(check int) "fenced bytes were not applied" base
    (Replica.applied_lsn r);
  (* a higher term is adopted on sight and its bytes apply *)
  deliver ~epoch:3 r ~seq:1 ~sent_at:1.1 (seg ~from_lsn:base tail);
  Alcotest.(check int) "higher term adopted" 3 (Replica.epoch r);
  Alcotest.(check int) "current-term bytes applied" (Wal.durable_end wal)
    (Replica.applied_lsn r);
  (* note_epoch never regresses *)
  Replica.note_epoch r 2;
  Alcotest.(check int) "terms are monotone" 3 (Replica.epoch r)

(* Satellite: seeded property sweep — replica apply converges to the
   primary's state under arbitrary duplication, reordering, and lossy
   first deliveries followed by a post-heal in-order resend. *)
let test_replica_convergence_property () =
  let db, durable = primary_with_tail () in
  let wal = Durable.wal durable in
  let expected = view_rows (Strip_db.catalog db) in
  let probe = bootstrap_replica durable in
  let base = Replica.applied_lsn probe in
  let tail = Wal.durable_slice wal ~from_lsn:base in
  let starts = List.map fst (Wal.read_from wal ~lsn:base).Wal.records in
  let rec bounds = function
    | [ last ] -> [ (last, Wal.durable_end wal) ]
    | a :: (b :: _ as rest) -> (a, b) :: bounds rest
    | [] -> []
  in
  let chunks =
    List.map
      (fun (a, b) -> (a, String.sub tail (a - base) (b - a)))
      (bounds starts)
  in
  Alcotest.(check bool) "enough frames to permute" true
    (List.length chunks >= 2);
  for seed = 0 to 19 do
    let rng = Random.State.make [| seed; 0x5eed |] in
    let r = bootstrap_replica durable in
    let seq = ref 0 in
    let send (a, bytes) =
      deliver r ~seq:!seq
        ~sent_at:(1.0 +. (0.01 *. float_of_int !seq))
        (seg ~from_lsn:a bytes);
      incr seq
    in
    (* partition-flavored first pass: a shuffled subset, some duplicated *)
    let shuffled =
      List.map (fun c -> (Random.State.bits rng, c)) chunks
      |> List.sort compare |> List.map snd
    in
    List.iter
      (fun c ->
        if Random.State.float rng 1.0 < 0.7 then begin
          send c;
          if Random.State.bool rng then send c
        end)
      shuffled;
    (* heal: the shipper re-covers the whole tail in order *)
    List.iter send chunks;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: applied through the end" seed)
      (Wal.durable_end wal) (Replica.applied_lsn r);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: view converged to the primary" seed)
      true
      (view_rows (Replica.catalog r) = expected)
  done

(* ------------------------------------------------------------------ *)
(* Cluster: shipping convergence and deterministic promotion *)

let test_promotion_tie_break () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db = Test_recovery.setup_durable_db durable in
  Strip_db.checkpoint db;
  update_stock db ~at:0.0 "S1" 31.0;
  update_stock db ~at:0.3 "S2" 38.0;
  let cfg = { Cluster.default_config with n_replicas = 2 } in
  let c =
    Cluster.create cfg ~primary:db ~read_table:"comp_prices"
      ~read_key_col:"comp" ~read_keys:[| "C1"; "C2" |] ~read_until:0.0
  in
  Cluster.schedule_shipping c ~until:3.0;
  Strip_db.run db ~until:3.0;
  Strip_db.crash db;
  (* identical links, no drops: both replicas hold the same applied LSN,
     so the election must break the tie toward the lowest id *)
  Alcotest.(check int) "replicas tied"
    (Replica.applied_lsn (Cluster.replica c 0))
    (Replica.applied_lsn (Cluster.replica c 1));
  let ndb, _rs, p =
    Cluster.promote c ~now:3.0
      ~mk_db:(fun dur -> Strip_db.create ~now:3.0 ~durable:dur ())
      ~reinstall:(fun ndb -> Test_recovery.install_comp_rule ndb)
  in
  Alcotest.(check int) "lowest id wins the tie" 0 p.Cluster.promoted;
  Alcotest.(check int) "nothing durable was lost" 0 p.Cluster.lost_bytes;
  Alcotest.(check int) "one failover counted" 1 (Cluster.n_failovers c);
  Alcotest.(check bool) "cluster repointed" true (Cluster.primary c == ndb);
  Strip_db.run ndb;
  Alcotest.(check int) "promoted primary audits clean" 0
    (List.length (Auditor.audit ndb).Auditor.divergences);
  Alcotest.(check bool) "promoted view matches the old primary's" true
    (view_rows (Strip_db.catalog db) = view_rows (Strip_db.catalog ndb))

let test_promotion_opens_new_epoch () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db = Test_recovery.setup_durable_db durable in
  Strip_db.checkpoint db;
  update_stock db ~at:0.0 "S1" 31.0;
  let cfg = { Cluster.default_config with n_replicas = 2 } in
  let c =
    Cluster.create cfg ~primary:db ~read_table:"comp_prices"
      ~read_key_col:"comp" ~read_keys:[| "C1" |] ~read_until:0.0
  in
  Alcotest.(check int) "the founding primary opens term 1" 1
    (Cluster.epoch c);
  Alcotest.(check (list (pair int int))) "founding history"
    [ (1, -1) ]
    (Cluster.epoch_history c);
  Cluster.schedule_shipping c ~until:3.0;
  Strip_db.run db ~until:3.0;
  Strip_db.crash db;
  let _ndb, _rs, p =
    Cluster.promote c ~now:3.0
      ~mk_db:(fun dur -> Strip_db.create ~now:3.0 ~durable:dur ())
      ~reinstall:(fun ndb -> Test_recovery.install_comp_rule ndb)
  in
  Alcotest.(check int) "the election opened term 2" 2 p.Cluster.epoch;
  Alcotest.(check int) "cluster term advanced" 2 (Cluster.epoch c);
  Alcotest.(check (list (pair int int))) "history records the winner"
    [ (1, -1); (2, p.Cluster.promoted) ]
    (Cluster.epoch_history c);
  Alcotest.(check int) "replicas adopted the new term" 2
    (Replica.epoch (Cluster.replica c 0))

(* Satellite: a cluster with no replicas no longer refuses promotion —
   it degrades to PR 4 crash-restart recovery from its own durable
   store, still opening a fresh term. *)
let test_promote_without_replicas_degrades () =
  Task.reset_ids ();
  let durable = Durable.create () in
  let db = Test_recovery.setup_durable_db durable in
  Strip_db.checkpoint db;
  update_stock db ~at:0.0 "S1" 31.0;
  update_stock db ~at:0.3 "S2" 38.0;
  Strip_db.run db;
  let expected = view_rows (Strip_db.catalog db) in
  let cfg = { Cluster.default_config with n_replicas = 0 } in
  let c =
    Cluster.create cfg ~primary:db ~read_table:"comp_prices"
      ~read_key_col:"comp" ~read_keys:[| "C1" |] ~read_until:0.0
  in
  Strip_db.crash db;
  let ndb, _rs, p =
    Cluster.promote c ~now:3.0
      ~mk_db:(fun dur -> Strip_db.create ~now:3.0 ~durable:dur ())
      ~reinstall:(fun ndb -> Test_recovery.install_comp_rule ndb)
  in
  Alcotest.(check int) "restart-in-place: no winner id" (-1) p.Cluster.promoted;
  Alcotest.(check int) "nothing durable was lost" 0 p.Cluster.lost_bytes;
  Alcotest.(check int) "a fresh term still opens" 2 p.Cluster.epoch;
  Alcotest.(check bool) "cluster repointed" true (Cluster.primary c == ndb);
  Strip_db.run ndb;
  Alcotest.(check int) "recovered engine audits clean" 0
    (List.length (Auditor.audit ndb).Auditor.divergences);
  Alcotest.(check bool) "recovered view equals the pre-crash view" true
    (view_rows (Strip_db.catalog ndb) = expected)

(* ------------------------------------------------------------------ *)
(* End-to-end: experiment failover loop, routing policies, determinism *)

let with_repl ?(policy = Cluster.Bounded_staleness 0.5) ?(rate = 25.0)
    (cfg : Experiment.config) : Experiment.config =
  {
    cfg with
    Experiment.repl =
      Some
        ({
           Experiment.default_repl with
           Experiment.replicas = 2;
           read_policy = policy;
           read_rate = rate;
         }
          : Experiment.repl_cfg);
  }

let test_experiment_failover () =
  Task.reset_ids ();
  let m = Experiment.run (with_repl (Test_recovery.crashy_cfg ())) in
  let r = Option.get m.Experiment.repl in
  let rc = Option.get m.Experiment.recovery in
  Alcotest.(check int) "the crash became a failover" 1 r.Experiment.n_failovers;
  Alcotest.(check int) "both replicas reported" 2
    (List.length r.Experiment.per_replica);
  Alcotest.(check bool) "reads were served" true (r.Experiment.n_reads > 0);
  Alcotest.(check bool) "replicas converged to the final primary" true
    (List.for_all
       (fun (pr : Experiment.replica_metrics) ->
         pr.Experiment.r_applied_lsn > 0)
       r.Experiment.per_replica);
  Alcotest.(check bool) "audit clean without repairs" true
    (rc.Experiment.audit_clean && rc.Experiment.repairs = 0);
  Alcotest.(check (option bool)) "view verified against recomputation"
    (Some true) m.Experiment.verified

let test_experiment_failover_determinism () =
  Task.reset_ids ();
  let a = Experiment.run (with_repl (Test_recovery.crashy_cfg ())) in
  Task.reset_ids ();
  let b = Experiment.run (with_repl (Test_recovery.crashy_cfg ())) in
  Alcotest.(check string) "same seed, same failover, byte-identical metrics"
    (Strip_obs.Json.to_string (Report.metrics_json a))
    (Strip_obs.Json.to_string (Report.metrics_json b))

let quick_cfg () =
  Experiment.quick
    (Experiment.default_config
       (Experiment.Comp_view Comp_rules.Unique_on_symbol) ~delay:1.0)
    0.02

let test_bounded_zero_always_primary () =
  Task.reset_ids ();
  let m =
    Experiment.run
      (with_repl ~policy:(Cluster.Bounded_staleness 0.0) (quick_cfg ()))
  in
  let r = Option.get m.Experiment.repl in
  Alcotest.(check bool) "reads ran" true (r.Experiment.n_reads > 0);
  Alcotest.(check int) "bounded:0 never elects a replica" 0
    r.Experiment.reads_replica;
  Alcotest.(check int) "every read fell through to the primary"
    r.Experiment.n_reads r.Experiment.reads_primary

let test_any_policy_spreads_reads () =
  Task.reset_ids ();
  let m = Experiment.run (with_repl ~policy:Cluster.Any (quick_cfg ())) in
  let r = Option.get m.Experiment.repl in
  Alcotest.(check bool) "replicas served reads" true
    (r.Experiment.reads_replica > 0);
  Alcotest.(check bool) "primary served its round-robin share" true
    (r.Experiment.reads_primary > 0)

let test_no_repl_surface_without_config () =
  Task.reset_ids ();
  let m = Experiment.run (quick_cfg ()) in
  Alcotest.(check bool) "no repl block without a repl config" true
    (m.Experiment.repl = None);
  let json = Strip_obs.Json.to_string (Report.metrics_json m) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    nn = 0 || at 0
  in
  Alcotest.(check bool) "JSON carries no replication member" false
    (contains json "\"replication\"");
  Task.reset_ids ();
  let mr = Experiment.run (with_repl (quick_cfg ())) in
  Alcotest.(check bool) "JSON carries the member when configured" true
    (contains
       (Strip_obs.Json.to_string (Report.metrics_json mr))
       "\"replication\"")

(* Acceptance: partition the primary mid-feed, elect over the cut, heal,
   fence the deposed primary's divergent tail, and end converged with no
   acked commit lost. *)
let split_brain_cfg () =
  {
    (with_repl (quick_cfg ())) with
    Experiment.verify = true;
    recovery = Some Experiment.default_recovery;
    chaos = [ Experiment.Partition_at { at = 9.0; heal_after_s = 1.5 } ];
  }

let test_split_brain_failover () =
  Task.reset_ids ();
  let m = Experiment.run (split_brain_cfg ()) in
  let r = Option.get m.Experiment.repl in
  let rc = Option.get m.Experiment.recovery in
  Alcotest.(check int) "one partition window" 1 r.Experiment.n_partitions;
  Alcotest.(check int) "the cut forced an election" 1 r.Experiment.n_failovers;
  Alcotest.(check int) "a new term opened" 2 r.Experiment.epoch;
  Alcotest.(check bool) "the deposed primary's tail was fenced" true
    (r.Experiment.fenced_bytes > 0);
  Alcotest.(check int) "fencing is not election data loss" 0
    r.Experiment.promotion_lost_bytes;
  Alcotest.(check bool) "replicas rejected stale-epoch traffic" true
    (r.Experiment.fenced_messages > 0);
  (* no acked commit lost: every promotion's applied frontier is still
     inside the final log *)
  List.iter
    (fun (e, _, lsn) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d acked frontier inside the final log" e)
        true
        (lsn <= r.Experiment.final_lsn))
    r.Experiment.promotions;
  (* exactly one primary per epoch: history (in opening order) strictly
     increases *)
  let rec strictly_increasing = function
    | (e1, _) :: ((e2, _) :: _ as rest) ->
      e1 < e2 && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "single primary per epoch" true
    (strictly_increasing r.Experiment.epochs);
  Alcotest.(check bool) "both replicas converged to the final primary" true
    (List.for_all
       (fun (pr : Experiment.replica_metrics) ->
         pr.Experiment.r_applied_lsn = r.Experiment.final_lsn)
       r.Experiment.per_replica);
  Alcotest.(check bool) "audit clean after heal" true rc.Experiment.audit_clean;
  Alcotest.(check (option bool)) "view verified against recomputation"
    (Some true) m.Experiment.verified

let test_split_brain_determinism () =
  let run () =
    Task.reset_ids ();
    Strip_obs.Json.to_string
      (Report.metrics_json (Experiment.run (split_brain_cfg ())))
  in
  Alcotest.(check string) "same partition schedule, byte-identical metrics"
    (run ()) (run ())

let suite =
  [
    ( "repl/wal",
      [
        Alcotest.test_case "read_from cursor" `Quick test_wal_read_from;
        Alcotest.test_case "slice/install round-trip" `Quick
          test_wal_slice_install_roundtrip;
      ] );
    ( "repl/link",
      [
        Alcotest.test_case "delivery order under serialization" `Quick
          test_link_delivery_order;
        Alcotest.test_case "drops are deterministic" `Quick
          test_link_drops_deterministic;
        Alcotest.test_case "partition windows cut sends while open" `Quick
          test_link_partition_window;
        Alcotest.test_case "window boundary half-open, RNG stream stable"
          `Quick test_link_window_boundary_and_rng;
        Alcotest.test_case "epoch-tagged windows fence one term" `Quick
          test_link_epoch_tagged_window;
        Alcotest.test_case "drop bursts raise loss inside the window" `Quick
          test_link_drop_burst;
        Alcotest.test_case "random windows are pure in the seed" `Quick
          test_link_random_windows;
      ] );
    ( "repl/replica",
      [
        Alcotest.test_case "joins mid-stream from a checkpoint" `Quick
          test_replica_joins_mid_stream;
        Alcotest.test_case "duplicate/reordered delivery is idempotent"
          `Quick test_replica_duplicate_and_reordered_apply;
        Alcotest.test_case "re-seeds after checkpoint truncation" `Quick
          test_replica_reseeds_after_truncation;
        Alcotest.test_case "heartbeats advance the staleness horizon" `Quick
          test_replica_heartbeat_staleness;
        Alcotest.test_case "stale epochs are fenced, higher adopted" `Quick
          test_replica_fencing;
        Alcotest.test_case "apply converges under seeded chaos delivery"
          `Quick test_replica_convergence_property;
      ] );
    ( "repl/cluster",
      [
        Alcotest.test_case "promotion breaks LSN ties by lowest id" `Quick
          test_promotion_tie_break;
        Alcotest.test_case "every election opens a new epoch" `Quick
          test_promotion_opens_new_epoch;
        Alcotest.test_case "promotion without replicas degrades to restart"
          `Quick test_promote_without_replicas_degrades;
      ] );
    ( "repl/experiment",
      [
        Alcotest.test_case "failover recovers and audits clean" `Slow
          test_experiment_failover;
        Alcotest.test_case "failover runs are deterministic" `Slow
          test_experiment_failover_determinism;
        Alcotest.test_case "bounded:0 always reads the primary" `Slow
          test_bounded_zero_always_primary;
        Alcotest.test_case "any policy spreads reads over all lanes" `Slow
          test_any_policy_spreads_reads;
        Alcotest.test_case "unreplicated runs expose no repl surface" `Slow
          test_no_repl_surface_without_config;
        Alcotest.test_case "split-brain: partition, fence, heal, converge"
          `Slow test_split_brain_failover;
        Alcotest.test_case "split-brain runs are deterministic" `Slow
          test_split_brain_determinism;
      ] );
  ]
