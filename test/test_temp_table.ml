open Strip_relational

(* A temp table over one source record slot, with a materialized extra
   column — the transition-table shape. *)
let schema2 =
  Schema.of_list [ ("k", Value.TStr); ("v", Value.TInt); ("seq", Value.TInt) ]

let prov2 =
  [| Temp_table.From_record (0, 0); Temp_table.From_record (0, 1);
     Temp_table.Computed 0 |]

let mk name = Temp_table.create ~name ~schema:schema2 ~nslots:1 ~prov:prov2

let rec_ k v = Record.create [| Value.Str k; Value.Int v |]

let test_static_map_validation () =
  (match
     Temp_table.create ~name:"bad" ~schema:schema2 ~nslots:1
       ~prov:[| Temp_table.From_record (0, 0); Temp_table.Computed 1;
                Temp_table.Computed 1 |]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-dense materialized cells accepted");
  match
    Temp_table.create ~name:"bad" ~schema:schema2 ~nslots:1
      ~prov:[| Temp_table.From_record (3, 0); Temp_table.Computed 0;
               Temp_table.Computed 1 |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "slot out of range accepted"

let test_pointer_reads () =
  let t = mk "t" in
  let r = rec_ "a" 7 in
  Temp_table.append t ~srcs:[| r |] ~mats:[| Value.Int 1 |];
  Alcotest.(check int) "pin taken" 1 r.Record.refcount;
  let rows = Temp_table.to_rows t in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check string) "col through pointer" "a" (Value.to_string row.(0));
  Alcotest.(check int) "materialized col" 1 (Value.to_int row.(2))

let test_reads_survive_source_retirement () =
  let t = mk "t" in
  let r = rec_ "a" 7 in
  Temp_table.append t ~srcs:[| r |] ~mats:[| Value.Int 1 |];
  Record.retire r;
  (* still pinned: values remain readable, not reclaimed *)
  Record.reset_reclaimed ();
  Alcotest.(check int) "readable" 7
    (Value.to_int (List.hd (Temp_table.to_rows t)).(1));
  Alcotest.(check int) "not reclaimed" 0 (Record.reclaimed_count ());
  Temp_table.retire t;
  Alcotest.(check int) "reclaimed at retire" 1 (Record.reclaimed_count ());
  Alcotest.(check bool) "marked" true (Temp_table.retired t)

let test_retire_idempotent () =
  let t = mk "t" in
  let r = rec_ "a" 1 in
  Temp_table.append t ~srcs:[| r |] ~mats:[| Value.Int 1 |];
  Temp_table.retire t;
  Temp_table.retire t;
  Alcotest.(check int) "refcount zero once" 0 r.Record.refcount;
  match Temp_table.append t ~srcs:[| r |] ~mats:[| Value.Int 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "append after retire accepted"

let test_absorb_moves_rows_and_pins () =
  let a = mk "a" and b = mk "b" in
  let r1 = rec_ "x" 1 and r2 = rec_ "y" 2 in
  Temp_table.append a ~srcs:[| r1 |] ~mats:[| Value.Int 1 |];
  Temp_table.append b ~srcs:[| r2 |] ~mats:[| Value.Int 2 |];
  Temp_table.absorb a b;
  Alcotest.(check int) "a grew" 2 (Temp_table.cardinal a);
  Alcotest.(check int) "b emptied" 0 (Temp_table.cardinal b);
  Alcotest.(check int) "pins moved, not doubled" 1 r2.Record.refcount;
  (* order: original rows first, absorbed after *)
  Alcotest.(check (list string)) "order" [ "x"; "y" ]
    (List.map (fun row -> Value.to_string row.(0)) (Temp_table.to_rows a));
  (* retiring the source of a merged row is still safe *)
  Temp_table.retire a;
  Alcotest.(check int) "all unpinned" 0 r2.Record.refcount

let test_absorb_layout_mismatch () =
  let a = mk "a" in
  let other =
    Temp_table.create_materialized ~name:"o"
      ~schema:(Schema.of_list [ ("k", Value.TStr) ])
  in
  match Temp_table.absorb a other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "layout mismatch accepted"

let test_materialized_convenience () =
  let t =
    Temp_table.create_materialized ~name:"m"
      ~schema:(Schema.of_list [ ("a", Value.TInt); ("b", Value.TStr) ])
  in
  Temp_table.append_values t [| Value.Int 1; Value.Str "x" |];
  Temp_table.append_values t [| Value.Int 2; Value.Str "y" |];
  Alcotest.(check int) "slots" 0 (Temp_table.slots t);
  Alcotest.(check (list string)) "contents" [ "x"; "y" ]
    (List.map (fun r -> Value.to_string r.(1)) (Temp_table.to_rows t))

let test_arity_checks () =
  let t = mk "t" in
  (match Temp_table.append t ~srcs:[||] ~mats:[| Value.Int 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing source slot accepted");
  match Temp_table.append t ~srcs:[| rec_ "a" 1 |] ~mats:[||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing materialized cell accepted"

let test_iteration_order_and_fold () =
  let t = mk "t" in
  List.iter
    (fun i ->
      Temp_table.append t ~srcs:[| rec_ (string_of_int i) i |]
        ~mats:[| Value.Int i |])
    [ 1; 2; 3 ];
  let seen = Temp_table.fold t ~init:[] ~f:(fun acc row ->
      Value.to_int (Temp_table.get t row 2) :: acc)
  in
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3 ] (List.rev seen)

let suite =
  [
    ( "temp_table",
      [
        Alcotest.test_case "static map validation" `Quick test_static_map_validation;
        Alcotest.test_case "pointer reads" `Quick test_pointer_reads;
        Alcotest.test_case "reads survive retirement (§6.1)" `Quick
          test_reads_survive_source_retirement;
        Alcotest.test_case "retire is idempotent" `Quick test_retire_idempotent;
        Alcotest.test_case "absorb moves rows and pins" `Quick
          test_absorb_moves_rows_and_pins;
        Alcotest.test_case "absorb layout check" `Quick test_absorb_layout_mismatch;
        Alcotest.test_case "materialized tables" `Quick test_materialized_convenience;
        Alcotest.test_case "arity checks" `Quick test_arity_checks;
        Alcotest.test_case "iteration order" `Quick test_iteration_order_and_fold;
      ] );
  ]
