open Strip_relational

let test_create_find_drop () =
  let cat = Catalog.create () in
  let tb =
    Catalog.create_table cat ~name:"t"
      ~schema:(Schema.of_list [ ("a", Value.TInt) ])
  in
  Alcotest.(check bool) "found" true (Catalog.find_table cat "t" = Some tb);
  (match Catalog.create_table cat ~name:"t" ~schema:(Schema.of_list []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate table accepted");
  Catalog.drop_table cat "t";
  Alcotest.(check bool) "gone" true (Catalog.find_table cat "t" = None);
  (match Catalog.drop_table cat "t" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "double drop accepted");
  match Catalog.table_exn cat "t" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "table_exn on missing table"

let test_creation_order () =
  let cat = Catalog.create () in
  List.iter
    (fun n ->
      ignore (Catalog.create_table cat ~name:n ~schema:(Schema.of_list [])))
    [ "alpha"; "beta"; "gamma" ];
  Catalog.drop_table cat "beta";
  Alcotest.(check (list string)) "order preserved" [ "alpha"; "gamma" ]
    (List.map Table.name (Catalog.tables cat))

let test_env_shadows_catalog () =
  let cat = Catalog.create () in
  ignore
    (Catalog.create_table cat ~name:"t" ~schema:(Schema.of_list [ ("a", Value.TInt) ]));
  let tmp =
    Temp_table.create_materialized ~name:"t"
      ~schema:(Schema.of_list [ ("b", Value.TStr) ])
  in
  (* the paper: the task's bound-table list is checked before the catalog *)
  (match Catalog.resolve cat ~env:[ ("t", tmp) ] "t" with
  | Some (Catalog.Tmp x) -> Alcotest.(check string) "temp wins" "t" (Temp_table.name x)
  | _ -> Alcotest.fail "bound table should shadow the catalog");
  match Catalog.resolve cat ~env:[] "t" with
  | Some (Catalog.Std _) -> ()
  | _ -> Alcotest.fail "catalog resolution broken"

let test_relation_accessors () =
  let cat = Catalog.create () in
  let tb =
    Catalog.create_table cat ~name:"t" ~schema:(Schema.of_list [ ("a", Value.TInt) ])
  in
  Alcotest.(check string) "name" "t" (Catalog.relation_name (Catalog.Std tb));
  Alcotest.(check int) "schema" 1
    (Schema.arity (Catalog.relation_schema (Catalog.Std tb)));
  match Catalog.resolve_exn cat ~env:[] "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "resolve_exn on missing relation"

let suite =
  [
    ( "catalog",
      [
        Alcotest.test_case "create/find/drop" `Quick test_create_find_drop;
        Alcotest.test_case "creation order" `Quick test_creation_order;
        Alcotest.test_case "bound tables shadow the catalog (§6.3)" `Quick
          test_env_shadows_catalog;
        Alcotest.test_case "relation accessors" `Quick test_relation_accessors;
      ] );
  ]
