open Strip_relational

let mk () =
  Schema.make
    [
      Schema.column ~qual:"t" "a" Value.TInt;
      Schema.column ~qual:"t" "b" Value.TStr;
      Schema.column ~qual:"u" "a" Value.TFloat;
    ]

let test_duplicate_detection () =
  (match
     Schema.make [ Schema.column "x" Value.TInt; Schema.column "x" Value.TInt ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate unqualified columns accepted");
  (* same name under different qualifiers is fine *)
  ignore (mk ())

let test_find_qualified () =
  let s = mk () in
  Alcotest.(check (option int)) "t.a" (Some 0) (Schema.find s ~qual:"t" "a");
  Alcotest.(check (option int)) "u.a" (Some 2) (Schema.find s ~qual:"u" "a");
  Alcotest.(check (option int)) "v.a" None (Schema.find s ~qual:"v" "a");
  Alcotest.(check (option int)) "unqualified b" (Some 1) (Schema.find s "b")

let test_ambiguous () =
  let s = mk () in
  match Schema.find s "a" with
  | exception Schema.Ambiguous "a" -> ()
  | _ -> Alcotest.fail "ambiguous reference not detected"

let test_requalify_unqualify () =
  let s = Schema.requalify "x" (mk ()) in
  Alcotest.(check (option int)) "x.b" (Some 1) (Schema.find s ~qual:"x" "b");
  Alcotest.(check (option int)) "t.b gone" None (Schema.find s ~qual:"t" "b");
  let u = Schema.unqualify (Schema.of_list [ ("c", Value.TInt) ]) in
  Alcotest.(check (list string)) "names" [ "c" ] (Schema.names u)

let test_append_conflicts () =
  let a = Schema.requalify "l" (Schema.of_list [ ("k", Value.TInt) ]) in
  let b = Schema.requalify "r" (Schema.of_list [ ("k", Value.TInt) ]) in
  let joined = Schema.append a b in
  Alcotest.(check int) "arity" 2 (Schema.arity joined);
  match Schema.append a a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "append with duplicate qualified names accepted"

let test_equal_layout () =
  let a = Schema.of_list [ ("x", Value.TInt); ("y", Value.TStr) ] in
  let b = Schema.requalify "q" a in
  Alcotest.(check bool) "qualifier-insensitive" true (Schema.equal_layout a b);
  let c = Schema.of_list [ ("x", Value.TFloat); ("y", Value.TStr) ] in
  Alcotest.(check bool) "type-sensitive" false (Schema.equal_layout a c);
  let d = Schema.of_list [ ("y", Value.TStr); ("x", Value.TInt) ] in
  Alcotest.(check bool) "order-sensitive" false (Schema.equal_layout a d)

let test_validate_row () =
  let s = Schema.of_list [ ("x", Value.TInt); ("y", Value.TFloat) ] in
  Alcotest.(check bool) "ok row" true
    (Result.is_ok (Schema.validate_row s [| Value.Int 1; Value.Int 2 |]));
  Alcotest.(check bool) "null ok" true
    (Result.is_ok (Schema.validate_row s [| Value.Null; Value.Null |]));
  Alcotest.(check bool) "wrong arity" true
    (Result.is_error (Schema.validate_row s [| Value.Int 1 |]));
  Alcotest.(check bool) "wrong type" true
    (Result.is_error (Schema.validate_row s [| Value.Str "a"; Value.Int 2 |]))

let test_col_bounds () =
  let s = mk () in
  Alcotest.(check string) "col 1" "b" (Schema.col s 1).Schema.cname;
  match Schema.col s 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range column accepted"

let suite =
  [
    ( "schema",
      [
        Alcotest.test_case "duplicate detection" `Quick test_duplicate_detection;
        Alcotest.test_case "qualified resolution" `Quick test_find_qualified;
        Alcotest.test_case "ambiguity" `Quick test_ambiguous;
        Alcotest.test_case "requalify/unqualify" `Quick test_requalify_unqualify;
        Alcotest.test_case "append" `Quick test_append_conflicts;
        Alcotest.test_case "layout equality" `Quick test_equal_layout;
        Alcotest.test_case "row validation" `Quick test_validate_row;
        Alcotest.test_case "column bounds" `Quick test_col_bounds;
      ] );
  ]
