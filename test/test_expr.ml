open Strip_relational
open Expr

let v = Alcotest.testable Value.pp Value.equal

let schema =
  Schema.make
    [
      Schema.column ~qual:"t" "x" Value.TInt;
      Schema.column ~qual:"t" "y" Value.TFloat;
      Schema.column ~qual:"u" "s" Value.TStr;
    ]

let row = [| Value.Int 4; Value.Float 2.5; Value.Str "hi" |]

let ev e = eval (resolve schema e) row

let test_arith () =
  Alcotest.check v "x*2+y" (Value.Float 10.5) (ev ((col "x" *: int 2) +: col "y"));
  Alcotest.check v "neg" (Value.Int (-4)) (ev (Unop (Neg, col "x")));
  Alcotest.check v "mod" (Value.Int 1) (ev (Binop (Mod, col "x", int 3)));
  Alcotest.check v "concat" (Value.Str "hi!") (ev (Binop (Concat, col "s", str "!")))

let test_comparisons () =
  Alcotest.check v "lt" (Value.Bool true) (ev (col "y" <: col "x"));
  Alcotest.check v "ge" (Value.Bool true) (ev (col "x" >=: int 4));
  Alcotest.check v "neq" (Value.Bool false) (ev (col "x" <>: float 4.0));
  Alcotest.check v "null cmp is null" Value.Null (ev (Const Value.Null =: int 1))

let test_three_valued_logic () =
  let t = bool true and f = bool false and n = Const Value.Null in
  (* Kleene tables *)
  Alcotest.check v "T and N" Value.Null (ev (t &&: n));
  Alcotest.check v "F and N" (Value.Bool false) (ev (f &&: n));
  Alcotest.check v "N and F" (Value.Bool false) (ev (n &&: f));
  Alcotest.check v "T or N" (Value.Bool true) (ev (t ||: n));
  Alcotest.check v "N or T" (Value.Bool true) (ev (n ||: t));
  Alcotest.check v "N or F" Value.Null (ev (n ||: f));
  Alcotest.check v "not N" Value.Null (ev (Unop (Not, n)));
  (* eval_pred treats unknown as false *)
  Alcotest.(check bool) "pred null -> false" false
    (eval_pred (resolve schema (n &&: t)) row)

let test_is_null () =
  Alcotest.check v "is null" (Value.Bool false) (ev (Unop (Is_null, col "x")));
  Alcotest.check v "is not null on null" (Value.Bool false)
    (ev (Unop (Is_not_null, Const Value.Null)))

let test_functions () =
  Alcotest.check v "sqrt" (Value.Float 2.0) (ev (Call ("sqrt", [ col "x" ])));
  Alcotest.check v "case-insensitive" (Value.Float 2.0)
    (ev (Call ("SQRT", [ col "x" ])));
  register_fun "twice" ~ret:Value.TInt (fun args ->
      match args with
      | [ Value.Int i ] -> Value.Int (2 * i)
      | _ -> Value.Null);
  Alcotest.check v "custom" (Value.Int 8) (ev (Call ("twice", [ col "x" ])));
  match ev (Call ("nope", [])) with
  | exception Unknown_function "nope" -> ()
  | _ -> Alcotest.fail "unknown function accepted"

let test_resolution () =
  (match resolve schema (col "zz") with
  | exception Unknown_column "zz" -> ()
  | _ -> Alcotest.fail "unknown column resolved");
  (match eval (col "x") row with
  | exception Unknown_column _ -> ()
  | _ -> Alcotest.fail "unresolved eval accepted");
  let e = resolve schema (col ~qual:"t" "x") in
  Alcotest.check v "qualified" (Value.Int 4) (eval e row)

let test_columns_used () =
  let e = (col "a" +: col ~qual:"q" "b") *: col "a" in
  Alcotest.(check (list (pair (option string) string)))
    "dedup, order" [ (None, "a"); (Some "q", "b") ] (columns_used e)

let test_infer_type () =
  let ity = Alcotest.(option string) in
  let inf e = Option.map Value.ty_name (infer_type schema e) in
  Alcotest.check ity "int+int" (Some "int") (inf (col "x" +: col "x"));
  Alcotest.check ity "int+float" (Some "float") (inf (col "x" +: col "y"));
  Alcotest.check ity "cmp" (Some "bool") (inf (col "x" <: col "y"));
  Alcotest.check ity "registered fun" (Some "float") (inf (Call ("sqrt", [ col "x" ])));
  Alcotest.check ity "unknown fun" None (inf (Call ("mystery9", [])))

let test_pp_round_trip_through_parser () =
  (* Rendering an expression and reparsing it yields the same value. *)
  let e = (col "x" +: int 2) *: col "y" in
  let rendered = Format.asprintf "%a" Expr.pp e in
  let c = Sql_parser.cursor_of_string rendered in
  let e' = Sql_parser.parse_expr_at c in
  Alcotest.check v "same value" (ev e) (ev e')

let suite =
  [
    ( "expr",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
        Alcotest.test_case "is null" `Quick test_is_null;
        Alcotest.test_case "scalar functions" `Quick test_functions;
        Alcotest.test_case "resolution" `Quick test_resolution;
        Alcotest.test_case "columns_used" `Quick test_columns_used;
        Alcotest.test_case "type inference" `Quick test_infer_type;
        Alcotest.test_case "pp/parse round trip" `Quick test_pp_round_trip_through_parser;
      ] );
  ]
