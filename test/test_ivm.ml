open Strip_relational
open Strip_txn
open Strip_core
open Strip_ivm

let setup () =
  let db = Strip_db.create () in
  Strip_db.exec_script db
    {|create table sales (region string, product string, amount float, qty int);
      create index sales_region on sales (region);
      insert into sales values
        ('east', 'w', 100.0, 1), ('east', 'g', 50.0, 2),
        ('west', 'w', 200.0, 3);
      create view revenue as
        select region, sum(amount) as total, count(*) as n
        from sales group by region|};
  db

let driver_columns = [ "region"; "product"; "amount"; "qty" ]

let analyze db =
  View_def.analyze
    (List.assoc "revenue" (Strip_db.view_definitions db))
    ~view:"revenue" ~driver:"sales" ~driver_columns

let view_rows db =
  List.map
    (fun r -> (Value.to_string r.(0), Value.to_float r.(1), Value.to_int r.(2)))
    (Strip_db.query_rows db "select region, total, n from revenue order by region")

let recomputed db =
  List.map
    (fun r -> (Value.to_string r.(0), Value.to_float r.(1), Value.to_int r.(2)))
    (Strip_db.query_rows db
       "select region, sum(amount) as total, count(*) as n from sales group \
        by region order by region")

let consistent db =
  let a = view_rows db and b = recomputed db in
  List.length a = List.length b
  && List.for_all2
       (fun (k1, t1, n1) (k2, t2, n2) ->
         k1 = k2 && Float.abs (t1 -. t2) < 1e-9 && n1 = n2)
       a b

let submit db at sql =
  Strip_db.submit_update db ~at (fun txn -> ignore (Transaction.exec txn sql))

let test_analyze () =
  let v = analyze (setup ()) in
  Alcotest.(check string) "driver" "sales" v.View_def.driver;
  Alcotest.(check (list string)) "keys" [ "region" ]
    (List.map fst v.View_def.key_cols);
  Alcotest.(check int) "two aggregates" 2 (List.length v.View_def.aggs);
  Alcotest.(check (list string)) "driver cols used" [ "region"; "amount" ]
    v.View_def.driver_cols_used

let test_analyze_rejections () =
  let db = setup () in
  let parse s = Sql_parser.parse_select_string s in
  let expect_unsupported s =
    match
      View_def.analyze (parse s) ~view:"v" ~driver:"sales" ~driver_columns
    with
    | exception View_def.Unsupported _ -> ()
    | _ -> Alcotest.failf "accepted: %s" s
  in
  ignore db;
  expect_unsupported "select region, avg(amount) as a from sales group by region";
  expect_unsupported "select region, sum(amount) as s from other group by region";
  expect_unsupported
    "select region + region as k, sum(amount) as s from sales group by region";
  expect_unsupported "select region, product from sales";
  expect_unsupported
    "select region, sum(amount) as s from sales group by region having s > 1";
  expect_unsupported "select * from sales"

let test_maintains_updates () =
  let db = setup () in
  ignore (Rule_gen.install db ~view:"revenue" ~driver:"sales" ());
  submit db 0.1 "update sales set amount += 25.0 where product = 'w'";
  submit db 0.2 "update sales set amount = 10.0 where region = 'east'";
  Strip_db.run db;
  Alcotest.(check bool) "consistent after updates" true (consistent db)

let test_maintains_insert_new_and_existing_groups () =
  let db = setup () in
  ignore (Rule_gen.install db ~view:"revenue" ~driver:"sales" ());
  submit db 0.1 "insert into sales values ('east', 'x', 5.0, 1)";
  submit db 0.2 "insert into sales values ('north', 'x', 7.0, 1)";
  Strip_db.run db;
  Alcotest.(check bool) "consistent after inserts" true (consistent db);
  Alcotest.(check int) "new group exists" 3
    (List.length
       (List.filter (fun (k, _, _) -> k = "north" || k = "east" || k = "west")
          (view_rows db)))

let test_delete_drops_empty_group () =
  let db = setup () in
  ignore (Rule_gen.install db ~view:"revenue" ~driver:"sales" ());
  submit db 0.1 "delete from sales where region = 'west'";
  Strip_db.run db;
  Alcotest.(check bool) "consistent after delete" true (consistent db);
  Alcotest.(check bool) "west group dropped" true
    (not (List.exists (fun (k, _, _) -> k = "west") (view_rows db)))

let test_mixed_workload_batched () =
  let db = setup () in
  ignore
    (Rule_gen.install db ~view:"revenue" ~driver:"sales"
       ~uniqueness:(Rule_ast.Unique_on [ "region" ]) ~delay:1.0 ());
  submit db 0.1 "update sales set amount += 1.0 where region = 'east'";
  submit db 0.2 "update sales set amount += 1.0 where region = 'east'";
  submit db 0.3 "insert into sales values ('east', 'y', 3.0, 1)";
  submit db 0.4 "delete from sales where product = 'g'";
  submit db 0.5 "insert into sales values ('south', 'z', 9.0, 2)";
  Strip_db.run db;
  Alcotest.(check bool) "consistent under batched mixed workload" true
    (consistent db);
  Alcotest.(check bool) "updates batched" true
    (Rule_manager.n_merges (Strip_db.rules db) >= 1)

let test_generated_rules_listed_and_droppable () =
  let db = setup () in
  ignore (Rule_gen.install db ~view:"revenue" ~driver:"sales" ());
  let names =
    List.map (fun r -> r.Rule_ast.rname) (Rule_manager.rules (Strip_db.rules db))
  in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " installed") true (List.mem n names))
    (Rule_gen.rule_names ~view:"revenue");
  List.iter
    (fun n -> Rule_manager.drop_rule (Strip_db.rules db) n)
    (Rule_gen.rule_names ~view:"revenue");
  submit db 0.1 "update sales set amount = 0.0 where region = 'east'";
  Strip_db.run db;
  Alcotest.(check bool) "view now stale (rules dropped)" true
    (not (consistent db))

let test_advisor_regimes () =
  let v = analyze (setup ()) in
  let base =
    {
      Advisor.update_rate = 100.0;
      fanout_per_update = 12.0;
      n_groups = 400;
      staleness_bound = 3.0;
    }
  in
  (match (Advisor.advise v base).Advisor.uniqueness with
  | Rule_ast.Unique_on [ "region" ] -> ()
  | _ -> Alcotest.fail "high sharing should batch per group key");
  (match
     (Advisor.advise v { base with Advisor.fanout_per_update = 1.0 }).Advisor.uniqueness
   with
  | Rule_ast.Unique -> ()
  | _ -> Alcotest.fail "hot driver with low sharing should batch coarsely");
  (match
     (Advisor.advise v
        { base with Advisor.update_rate = 0.5; fanout_per_update = 1.0 })
       .Advisor.uniqueness
   with
  | Rule_ast.Not_unique -> ()
  | _ -> Alcotest.fail "cold driver should not batch");
  let a = Advisor.advise v { base with Advisor.staleness_bound = 0.7 } in
  Alcotest.(check bool) "staleness bound caps the delay" true
    (a.Advisor.delay <= 0.7 +. 1e-9)

let test_measure_stats () =
  let db = setup () in
  let v = analyze db in
  let s = Advisor.measure_stats db v ~update_rate:10.0 ~staleness_bound:2.0 in
  Alcotest.(check int) "groups counted" 2 s.Advisor.n_groups;
  Alcotest.(check (float 1e-9)) "rate passthrough" 10.0 s.Advisor.update_rate

let test_install_unknown_view () =
  let db = setup () in
  match Rule_gen.install db ~view:"ghost" ~driver:"sales" () with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown view accepted"

let suite =
  [
    ( "ivm",
      [
        Alcotest.test_case "analysis" `Quick test_analyze;
        Alcotest.test_case "unsupported views rejected" `Quick test_analyze_rejections;
        Alcotest.test_case "maintains updates" `Quick test_maintains_updates;
        Alcotest.test_case "insert: new and existing groups" `Quick
          test_maintains_insert_new_and_existing_groups;
        Alcotest.test_case "delete drops empty groups" `Quick
          test_delete_drops_empty_group;
        Alcotest.test_case "batched mixed workload" `Quick test_mixed_workload_batched;
        Alcotest.test_case "generated rules listed and droppable" `Quick
          test_generated_rules_listed_and_droppable;
        Alcotest.test_case "advisor regimes" `Quick test_advisor_regimes;
        Alcotest.test_case "measured stats" `Quick test_measure_stats;
        Alcotest.test_case "unknown view" `Quick test_install_unknown_view;
      ] );
  ]
