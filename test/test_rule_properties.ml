(* End-to-end property: for ANY random workload (stocks, composite
   memberships, option listings, quote sequence) and ANY batching variant
   and delay window, the maintained views are exactly what full
   recomputation gives.  This is the system-level contract behind every
   number in EXPERIMENTS.md. *)

open Strip_relational
open Strip_core
open Strip_pta

type universe = {
  n_stocks : int;
  memberships : (int * int * float) list;  (* comp, stock, weight *)
  options : (int * float * float) list;  (* stock, strike, expiry *)
  quotes : (float * int * float) list;  (* time, stock, price *)
  delay : float;
}

let gen_universe =
  QCheck2.Gen.(
    let* n_stocks = int_range 2 6 in
    let* n_comps = int_range 1 3 in
    let* memberships =
      list_size (int_range 1 10)
        (triple (int_range 0 (n_comps - 1)) (int_range 0 (n_stocks - 1))
           (float_range 0.1 2.0))
    in
    let* options =
      list_size (int_range 0 5)
        (triple (int_range 0 (n_stocks - 1)) (float_range 5.0 50.0)
           (float_range 0.1 1.0))
    in
    let* quotes =
      list_size (int_range 1 30)
        (triple (float_range 0.0 10.0) (int_range 0 (n_stocks - 1))
           (float_range 1.0 100.0))
    in
    let* delay = float_range 0.0 3.0 in
    return { n_stocks; memberships; options; quotes; delay })

let sym i = Printf.sprintf "S%d" i

let build u =
  let db = Strip_db.create () in
  let cat = Strip_db.catalog db in
  let mk name cols = Catalog.create_table cat ~name ~schema:(Schema.of_list cols) in
  let idx tb name cols = Table.create_index tb ~name ~kind:Index.Hash ~cols in
  let stocks = mk "stocks" [ ("symbol", Value.TStr); ("price", Value.TFloat) ] in
  let stock_stdev = mk "stock_stdev" [ ("symbol", Value.TStr); ("stdev", Value.TFloat) ] in
  let comps_list =
    mk "comps_list"
      [ ("comp", Value.TStr); ("symbol", Value.TStr); ("weight", Value.TFloat) ]
  in
  let options_list =
    mk "options_list"
      [ ("option_symbol", Value.TStr); ("stock_symbol", Value.TStr);
        ("strike", Value.TFloat); ("expiration", Value.TFloat) ]
  in
  for s = 0 to u.n_stocks - 1 do
    ignore (Table.insert stocks [| Value.Str (sym s); Value.Float 10.0 |]);
    ignore (Table.insert stock_stdev [| Value.Str (sym s); Value.Float 0.3 |])
  done;
  List.iter
    (fun (c, s, w) ->
      ignore
        (Table.insert comps_list
           [| Value.Str (Printf.sprintf "C%d" c); Value.Str (sym s); Value.Float w |]))
    u.memberships;
  List.iteri
    (fun i (s, strike, expiry) ->
      ignore
        (Table.insert options_list
           [| Value.Str (Printf.sprintf "O%d" i); Value.Str (sym s);
              Value.Float strike; Value.Float expiry |]))
    u.options;
  let stocks_by_symbol = idx stocks "i_stocks" [ "symbol" ] in
  let stdev_by_symbol = idx stock_stdev "i_stdev" [ "symbol" ] in
  let comps_by_symbol = idx comps_list "i_cl" [ "symbol" ] in
  let options_by_stock = idx options_list "i_ol" [ "stock_symbol" ] in
  Strip_finance.Black_scholes.register_sql_function ();
  ignore
    (Sql_exec.exec_string cat ~env:[]
       "create view comp_prices as select comp, sum(price * weight) as price \
        from stocks, comps_list where stocks.symbol = comps_list.symbol group \
        by comp");
  ignore
    (Sql_exec.exec_string cat ~env:[]
       "create view option_prices as select option_symbol, f_bs(price, \
        strike, expiration, stdev) as price from stocks, stock_stdev, \
        options_list where stocks.symbol = options_list.stock_symbol and \
        stocks.symbol = stock_stdev.symbol");
  let comp_prices = Catalog.table_exn cat "comp_prices" in
  let option_prices = Catalog.table_exn cat "option_prices" in
  let comp_by_name = idx comp_prices "i_cp" [ "comp" ] in
  let option_by_symbol = idx option_prices "i_op" [ "option_symbol" ] in
  ( db,
    {
      Pta_tables.stocks;
      stocks_by_symbol;
      stock_stdev;
      stdev_by_symbol;
      comps_list;
      comps_by_symbol;
      comp_prices;
      comp_by_name;
      options_list;
      options_by_stock;
      option_prices;
      option_by_symbol;
    } )

let drive db (h : Pta_tables.handles) u =
  List.iter
    (fun (at, s, price) ->
      Strip_db.submit_update db ~at (fun txn ->
          Db_ops.update_stock_price txn ~stocks:h.Pta_tables.stocks
            ~by_symbol:h.Pta_tables.stocks_by_symbol ~symbol:(sym s) ~price))
    u.quotes;
  Strip_db.run db

let agree expected actual tol =
  List.length expected = List.length actual
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> k1 = k2 && Float.abs (v1 -. v2) <= tol)
       expected actual

let prop_comp_variants =
  QCheck2.Test.make ~name:"any workload x any comp variant maintains exactly"
    ~count:40
    QCheck2.Gen.(pair gen_universe (int_range 0 3))
    (fun (u, vi) ->
      let variant = List.nth Comp_rules.all_variants vi in
      let db, h = build u in
      Comp_rules.install db h variant ~delay:u.delay;
      drive db h u;
      agree
        (Comp_rules.recompute_from_scratch h)
        (Comp_rules.maintained h) 1e-9)

let prop_option_variants =
  QCheck2.Test.make
    ~name:"any workload x any option variant maintains exactly" ~count:40
    QCheck2.Gen.(pair gen_universe (int_range 0 3))
    (fun (u, vi) ->
      let variant =
        List.nth
          (Option_rules.all_variants @ [ Option_rules.Unique_on_option ])
          vi
      in
      let db, h = build u in
      Option_rules.install db h variant ~delay:u.delay;
      drive db h u;
      agree
        (Option_rules.recompute_from_scratch h)
        (Option_rules.maintained h) 1e-12)

let prop_both_views_together =
  QCheck2.Test.make ~name:"both views maintained side by side" ~count:25
    gen_universe
    (fun u ->
      let db, h = build u in
      Comp_rules.install db h Comp_rules.Unique_on_comp ~delay:u.delay;
      Option_rules.install db h Option_rules.Unique_on_symbol ~delay:u.delay;
      drive db h u;
      agree (Comp_rules.recompute_from_scratch h) (Comp_rules.maintained h) 1e-9
      && agree
           (Option_rules.recompute_from_scratch h)
           (Option_rules.maintained h) 1e-12)

let suite =
  [
    ( "rule-properties",
      [
        QCheck_alcotest.to_alcotest prop_comp_variants;
        QCheck_alcotest.to_alcotest prop_option_variants;
        QCheck_alcotest.to_alcotest prop_both_views_together;
      ] );
  ]
