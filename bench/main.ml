(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Figures 9-14).

   - Table 1 micro-benchmarks the engine's primitive operations with
     Bechamel (real nanoseconds on this machine) and prints them alongside
     the simulated cost model (the reconstruction of the paper's Table 1,
     whose only published total is 172 us for a one-tuple cursor update).
   - Figures 9-11 sweep the comp_prices maintenance variants over delay
     windows; Figures 12-14 do the same for option_prices.  Each run
     replays the TAQ-like trace through the simulator, really executing
     every transaction and rule, and verifies the maintained view against
     full recomputation.

   Environment knobs:
     STRIP_BENCH_SCALE    workload scale factor (default 1.0 = the paper's
                          30-minute, 60k-update, 400x200-composite, 50k-option
                          scenario)
     STRIP_BENCH_DELAYS   comma-separated delay windows (default 0.5,1,1.5,2,3)
     STRIP_BENCH_SKIP_TABLE1 / STRIP_BENCH_SKIP_FIGURES /
     STRIP_BENCH_SKIP_ABLATIONS / STRIP_BENCH_SKIP_SWEEP /
     STRIP_BENCH_SKIP_ROBUSTNESS / STRIP_BENCH_SKIP_RECOVERY /
     STRIP_BENCH_SKIP_REPLICATION / STRIP_BENCH_SKIP_CHAOS /
     STRIP_BENCH_SKIP_STORAGE / STRIP_BENCH_SKIP_SHARD
                          set to skip a part
     STRIP_BENCH_CHAOS_SCHEDULES / STRIP_BENCH_CHAOS_SEED /
     STRIP_BENCH_CHAOS_SCALE
                          chaos-lane sweep size (min 25), seed, and scale
     STRIP_BENCH_STORAGE_SCHEDULES / STRIP_BENCH_STORAGE_SEED /
     STRIP_BENCH_STORAGE_SCALE
                          storage-fault lane sweep size (min 6), seed, scale

   Flags:
     --trace FILE         merge every figure-sweep experiment's lifecycle
                          trace into one Chrome trace_event file (open at
                          chrome://tracing or ui.perfetto.dev)
     --metrics FILE       write every experiment's metrics-registry
                          snapshot (latency percentiles per task class,
                          per-table staleness, failure counters) as JSON
     --wallclock          time representative end-to-end scenarios in real
                          wall-clock nanoseconds per transaction (median of
                          5 runs each) and write BENCH_WALLCLOCK.json *)

open Strip_relational
open Strip_txn
open Strip_pta
module Cost_model = Strip_sim.Cost_model

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( try float_of_string s with _ -> default)
  | None -> default

let env_delays () =
  match Sys.getenv_opt "STRIP_BENCH_DELAYS" with
  | None -> [ 0.5; 1.0; 1.5; 2.0; 3.0 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun x -> float_of_string_opt (String.trim x))

let scale = env_float "STRIP_BENCH_SCALE" 1.0

(* Observability exports.  Each experiment records into its own ring
   buffer; traces merge into one Chrome file (one pid per experiment) and
   registry snapshots into one JSON document, so a single bench run yields
   one artifact per kind. *)
let trace_file = ref None
let metrics_file = ref None
let wallclock = ref false

let () =
  let rec parse = function
    | "--trace" :: f :: rest ->
      trace_file := Some f;
      parse rest
    | "--metrics" :: f :: rest ->
      metrics_file := Some f;
      parse rest
    | "--wallclock" :: rest ->
      wallclock := true;
      parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv))

let observing () = !trace_file <> None || !metrics_file <> None

let collected_traces : (string * Strip_obs.Trace.t) list ref = ref []
let collected_metrics : Strip_obs.Json.t list ref = ref []

let collect (m : Experiment.metrics) tr =
  let open Strip_obs in
  let tag = Printf.sprintf "%s@%gs" m.Experiment.label m.Experiment.delay in
  (match tr with
  | Some tr -> collected_traces := (tag, tr) :: !collected_traces
  | None -> ());
  collected_metrics :=
    Json.Obj
      [
        ("label", Json.Str m.Experiment.label);
        ("delay_s", Json.Float m.Experiment.delay);
        ("report", Report.metrics_json m);
        ("metrics", Metrics.json_of_rows ~buckets:false m.Experiment.registry);
      ]
    :: !collected_metrics

let write_exports () =
  let open Strip_obs in
  (match !trace_file with
  | None -> ()
  | Some path ->
    let events =
      List.concat
        (List.mapi
           (fun i (tag, tr) ->
             Trace.chrome_events ~pid:(i + 1) ~process_name:tag tr)
           (List.rev !collected_traces))
    in
    let oc = open_out path in
    Json.to_channel oc
      (Json.Obj
         [
           ("traceEvents", Json.List events);
           ("displayTimeUnit", Json.Str "ms");
         ]);
    close_out oc;
    Printf.printf "wrote Chrome trace (%d events) to %s\n%!"
      (List.length events) path);
  match !metrics_file with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Json.to_channel oc
      (Json.Obj [ ("experiments", Json.List (List.rev !collected_metrics)) ]);
    close_out oc;
    Printf.printf "wrote metrics snapshot to %s\n%!" path

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ================================================================== *)
(* Table 1: primitive operation timings.                               *)

let bench_table1 () =
  section "Table 1: basic STRIP operations";
  (* a 10k-row indexed table, like a live system's *)
  let cat = Catalog.create () in
  let tb =
    Catalog.create_table cat ~name:"t"
      ~schema:(Schema.of_list [ ("k", Value.TInt); ("v", Value.TFloat) ])
  in
  let idx = Table.create_index tb ~name:"t_k" ~kind:Index.Hash ~cols:[ "k" ] in
  for i = 0 to 9_999 do
    ignore (Table.insert tb [| Value.Int i; Value.Float (float_of_int i) |])
  done;
  let locks = Lock.create () in
  let clock = Clock.create () in
  (* Keep a rotating row id so updates spread over the table. *)
  let next = ref 0 in
  let bump () =
    next := (!next + 7919) mod 10_000;
    !next
  in
  (* The benchmarked closures measure raw engine speed; metering stays on,
     as it does during experiments. *)
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"begin+commit transaction"
        (Staged.stage (fun () ->
             let txn = Transaction.begin_ ~cat ~locks ~clock () in
             Transaction.commit txn;
             Transaction.cleanup txn));
      Test.make ~name:"get+release lock"
        (Staged.stage (fun () ->
             ignore (Lock.acquire locks ~owner:0 (Lock.Rec ("t", bump ())) Lock.X);
             Lock.release_all locks ~owner:0));
      Test.make ~name:"open+close cursor"
        (Staged.stage (fun () ->
             let c = Table.open_cursor tb in
             Table.close_cursor c));
      Test.make ~name:"index probe"
        (Staged.stage (fun () -> ignore (Index.lookup idx [ Value.Int (bump ()) ])));
      Test.make ~name:"fetch cursor (via index)"
        (Staged.stage (fun () ->
             let c = Table.open_index_cursor tb idx [ Value.Int (bump ()) ] in
             ignore (Table.fetch c);
             Table.close_cursor c));
      Test.make ~name:"cursor update (one tuple)"
        (Staged.stage (fun () ->
             let c = Table.open_index_cursor tb idx [ Value.Int (bump ()) ] in
             (match Table.fetch c with
             | Some r ->
               ignore
                 (Table.cursor_update c
                    [| Record.value r 0;
                       Value.add (Record.value r 1) (Value.Float 1.0) |])
             | None -> ());
             Table.close_cursor c));
      Test.make ~name:"simple update transaction (full path)"
        (Staged.stage (fun () ->
             let txn = Transaction.begin_ ~cat ~locks ~clock () in
             ignore
               (Transaction.exec txn
                  (Printf.sprintf "update t set v = v + 1.0 where k = %d" (bump ())));
             Transaction.commit txn;
             Transaction.cleanup txn));
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"table1" tests)
  in
  let results = Analyze.all ols instance raw in
  let measured = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (ns :: _) -> Hashtbl.replace measured name ns
      | _ -> ())
    results;
  Printf.printf "%-42s %14s\n" "operation (this machine, real time)" "ns/op";
  List.iter
    (fun t ->
      let name = "table1/" ^ Test.Elt.name (List.hd (Test.elements t)) in
      match Hashtbl.find_opt measured name with
      | Some ns -> Printf.printf "%-42s %14.0f\n" name ns
      | None -> Printf.printf "%-42s %14s\n" name "-")
    tests;
  print_newline ();
  Printf.printf
    "Simulated cost model (reconstruction of the paper's Table 1, us):\n";
  List.iter
    (fun (name, us) -> Printf.printf "  %-24s %6.1f\n" name us)
    (Cost_model.table1_entries Cost_model.default);
  Printf.printf
    "  %-24s %6.1f   (paper: 172 us => ~5,814 TPS; observed ~7,000 TPS)\n"
    "simple one-tuple update"
    (Cost_model.simple_update_us Cost_model.default)

(* ================================================================== *)
(* Figures 9-14.                                                        *)

let run_sweep rules delays =
  (* The non-unique baseline ignores the delay window: run it once. *)
  List.concat_map
    (fun rule ->
      let is_baseline =
        match rule with
        | Experiment.Comp_view Comp_rules.Non_unique
        | Experiment.Option_view Option_rules.Non_unique ->
          true
        | _ -> false
      in
      let deltas = if is_baseline then [ 0.0 ] else delays in
      List.map
        (fun delay ->
          let cfg = Experiment.default_config rule ~delay in
          let cfg = if scale <> 1.0 then Experiment.quick cfg scale else cfg in
          let tr =
            if observing () then Some (Strip_obs.Trace.create ()) else None
          in
          let cfg = { cfg with Experiment.trace = tr } in
          let m = Experiment.run cfg in
          Report.print_metrics m;
          if observing () then collect m tr;
          m)
        deltas)
    rules

let series_of metrics ~label_of ~value_of =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (m : Experiment.metrics) ->
      let label = label_of m in
      let cur =
        match Hashtbl.find_opt tbl label with
        | Some l -> l
        | None ->
          order := label :: !order;
          []
      in
      Hashtbl.replace tbl label (cur @ [ (m.Experiment.delay, value_of m) ]))
    metrics;
  List.rev_map (fun label -> (label, Hashtbl.find tbl label)) !order

let figures () =
  let delays = env_delays () in
  section
    (Printf.sprintf
       "Figures 9-14 (scale %.2f: %.0f s trace, ~%d updates; delays %s)" scale
       (1800.0 *. scale)
       (int_of_float (60000.0 *. scale))
       (String.concat "," (List.map (Printf.sprintf "%g") delays)));
  Report.print_metrics_header ();
  let comp_metrics =
    run_sweep
      [
        Experiment.Comp_view Comp_rules.Non_unique;
        Experiment.Comp_view Comp_rules.Unique_coarse;
        Experiment.Comp_view Comp_rules.Unique_on_symbol;
        Experiment.Comp_view Comp_rules.Unique_on_comp;
      ]
      delays
  in
  let option_metrics =
    run_sweep
      [
        Experiment.Option_view Option_rules.Non_unique;
        Experiment.Option_view Option_rules.Unique_coarse;
        Experiment.Option_view Option_rules.Unique_on_symbol;
      ]
      delays
  in
  let unverified =
    List.filter
      (fun (m : Experiment.metrics) -> m.Experiment.verified = Some false)
      (comp_metrics @ option_metrics)
  in
  if unverified <> [] then begin
    List.iter
      (fun (m : Experiment.metrics) ->
        Printf.printf "VERIFICATION FAILED: %s delay %.1f (max error %g)\n"
          m.Experiment.label m.Experiment.delay m.Experiment.max_abs_error)
      unverified;
    exit 1
  end;
  let strip_prefix (m : Experiment.metrics) =
    match String.index_opt m.Experiment.label '/' with
    | Some i ->
      String.sub m.Experiment.label (i + 1)
        (String.length m.Experiment.label - i - 1)
    | None -> m.Experiment.label
  in
  let fig title ylabel metrics value_of fmt =
    Report.print_series ~title ~ylabel ~delays
      ~series:(series_of metrics ~label_of:strip_prefix ~value_of)
      ~value_fmt:fmt
  in
  fig "Figure 9: CPU utilization maintaining comp_prices" "cpu" comp_metrics
    (fun m -> m.Experiment.utilization)
    Report.fmt_pct;
  fig "Figure 10: number of recomputations N_r (comp_prices)" "N_r" comp_metrics
    (fun m -> float_of_int m.Experiment.n_recompute)
    Report.fmt_count;
  fig "Figure 11: mean recompute transaction length (comp_prices)" "length"
    comp_metrics
    (fun m -> m.Experiment.mean_recompute_us)
    Report.fmt_us;
  fig "Figure 12: CPU utilization maintaining option_prices" "cpu" option_metrics
    (fun m -> m.Experiment.utilization)
    Report.fmt_pct;
  fig "Figure 13: number of recomputations N_r (option_prices)" "N_r"
    option_metrics
    (fun m -> float_of_int m.Experiment.n_recompute)
    Report.fmt_count;
  fig "Figure 14: mean recompute transaction length (option_prices)" "length"
    option_metrics
    (fun m -> m.Experiment.mean_recompute_us)
    Report.fmt_us;
  print_newline ();
  print_endline
    "All configurations verified: maintained views match full recomputation.";
  match Cost_model.unknown_counters () with
  | [] -> ()
  | l ->
    Printf.printf "warning: counters with no cost entry: %s\n"
      (String.concat ", " l)

(* ================================================================== *)
(* Ablations: the modelled design choices DESIGN.md calls out.          *)

let ablations () =
  section "Ablations (design-choice studies)";
  let run ?(ab_scale = 0.25) ?(tweak_cost = fun c -> c)
      ?(tweak_feed = fun f -> f) rule delay =
    let cfg = Experiment.default_config rule ~delay in
    let cfg = Experiment.quick cfg ab_scale in
    let cfg =
      {
        cfg with
        Experiment.cost = tweak_cost cfg.Experiment.cost;
        feed = tweak_feed cfg.Experiment.feed;
        verify = false;
      }
    in
    Experiment.run cfg
  in
  let pct m = 100.0 *. m.Experiment.utilization in

  (* 1. The §5.1 scheduling-congestion surcharge is what makes fine-grained
     batching (unique on comp) collapse at small delay windows. *)
  Printf.printf
    "\n1. critical region (full scale): unique-on-comp at 0.5 s, with and\n\
    \   without the quadratic scheduling surcharge (vs non-unique baseline)\n%!";
  let no_congestion c = Cost_model.override c [ ("sched_congestion", 0.0) ] in
  let base = run ~ab_scale:1.0 (Experiment.Comp_view Comp_rules.Non_unique) 0.0 in
  let with_c =
    run ~ab_scale:1.0 (Experiment.Comp_view Comp_rules.Unique_on_comp) 0.5
  in
  let without_c =
    run ~ab_scale:1.0 ~tweak_cost:no_congestion
      (Experiment.Comp_view Comp_rules.Unique_on_comp) 0.5
  in
  Printf.printf
    "   non-unique %.1f%% | on-comp with congestion %.1f%% | without %.1f%%\n%!"
    (pct base) (pct with_c) (pct without_c);

  (* 2. The Figure-12 crossover exists because intra-burst quote gaps have
     a ~1 s floor; with uniformly-spread bursts, sub-second delay windows
     batch heavily and the crossover disappears. *)
  Printf.printf
    "\n2. temporal locality: option_prices unique-on-symbol at 0.5 s delay,\n\
    \   with the gap-floor burst model vs dense bursts (floor 0.05 s)\n%!";
  let dense f =
    { f with Strip_market.Feed.burst_gap_min = 0.05; burst_gap_mean = 0.25 }
  in
  let o_base = run (Experiment.Option_view Option_rules.Non_unique) 0.0 in
  let o_floor = run (Experiment.Option_view Option_rules.Unique_on_symbol) 0.5 in
  let o_dense =
    run ~tweak_feed:dense (Experiment.Option_view Option_rules.Unique_on_symbol) 0.5
  in
  let o_base_dense =
    run ~tweak_feed:dense (Experiment.Option_view Option_rules.Non_unique) 0.0
  in
  Printf.printf
    "   gap-floor trace: non-unique %.1f%%, on-symbol@0.5s %.1f%% (batching \
     loses)\n\
    \   dense bursts:    non-unique %.1f%%, on-symbol@0.5s %.1f%% (batching \
     wins)\n%!"
    (pct o_base) (pct o_floor) (pct o_base_dense) (pct o_dense);

  (* 3. Context-switch charging penalizes long coarse transactions (§5.2
     third bullet). *)
  Printf.printf
    "\n3. preemption overhead: coarse unique option batches at 3 s delay,\n\
    \   with and without context-switch charging\n";
  let no_ctx c = Cost_model.override c [ ("context_switch", 0.0) ] in
  let c_with =
    run ~ab_scale:1.0 (Experiment.Option_view Option_rules.Unique_coarse) 3.0
  in
  let c_without =
    run ~ab_scale:1.0 ~tweak_cost:no_ctx
      (Experiment.Option_view Option_rules.Unique_coarse) 3.0
  in
  Printf.printf "   with %.1f%% (%d switches) | without %.1f%%\n%!" (pct c_with)
    c_with.Experiment.context_switches (pct c_without);

  (* 4. The unit of batching trades CPU against transaction length (§5
     conclusion): same delay, three units. *)
  Printf.printf
    "\n4. unit of batching at 2 s delay (comp_prices): cpu%% vs transaction \
     length\n";
  List.iter
    (fun v ->
      let m = run (Experiment.Comp_view v) 2.0 in
      Printf.printf "   %-18s %6.1f%%  mean %10s  max %10s\n%!"
        (Comp_rules.variant_name v) (pct m)
        (Report.fmt_us m.Experiment.mean_recompute_us)
        (Report.fmt_us m.Experiment.max_recompute_us))
    [ Comp_rules.Unique_coarse; Comp_rules.Unique_on_symbol;
      Comp_rules.Unique_on_comp ]

(* ================================================================== *)
(* Server sweep: multi-server execution under overload (PR3).          *)

let server_sweep () =
  section "Server sweep (multi-server lock-arbitrated execution)";
  (* Overload knob: de-rate the simulated CPU until one server cannot keep
     up with the feed.  Total work is then fixed (the non-unique rule never
     merges), so extra servers shrink the makespan and recompute throughput
     climbs until the feed itself becomes the bottleneck.  Lock conflicts
     are real: concurrent recomputes collide on shared composite rows and
     park/wake through the 2PL manager. *)
  let sw_scale = Float.min scale 0.05 in
  let slowdown = 250.0 in
  let slow =
    Cost_model.create
      (List.map
         (fun (name, us) -> (name, us *. slowdown))
         (Cost_model.entries Cost_model.default))
  in
  let run_at servers =
    let cfg =
      Experiment.default_config (Experiment.Comp_view Comp_rules.Non_unique)
        ~delay:0.0
    in
    let cfg = Experiment.quick cfg sw_scale in
    let cfg =
      {
        cfg with
        Experiment.cost = slow;
        verify = true;
        servers;
        (* With a de-rated CPU the queueing delay between a wake and the
           re-run dwarfs the 5 s wait-timeout default, so a contended task
           would be presumed deadlocked over and over and eventually
           dead-letter — losing its recompute.  Scale the timeout with the
           slowdown and give the retry path budget to spare. *)
        lock_timeout_s = 120.0;
        retry =
          Some { Strip_sim.Engine.default_retry with max_attempts = 20 };
      }
    in
    let m = Experiment.run cfg in
    Report.print_metrics m;
    Report.print_servers m;
    if m.Experiment.verified <> Some true then begin
      Printf.printf
        "SWEEP FAILED: %d-server run did not converge (max error %g)\n"
        servers m.Experiment.max_abs_error;
      exit 1
    end;
    m
  in
  Report.print_metrics_header ();
  let ms = List.map run_at [ 1; 2; 4; 8 ] in
  let rec check_monotone = function
    | (a : Experiment.metrics) :: (b : Experiment.metrics) :: rest ->
      if
        b.Experiment.recompute_throughput_per_s
        <= a.Experiment.recompute_throughput_per_s
      then begin
        Printf.printf
          "SWEEP FAILED: recompute throughput did not improve %d -> %d \
           servers (%.2f/s -> %.2f/s)\n"
          a.Experiment.servers b.Experiment.servers
          a.Experiment.recompute_throughput_per_s
          b.Experiment.recompute_throughput_per_s;
        exit 1
      end;
      check_monotone (b :: rest)
    | _ -> ()
  in
  check_monotone ms;
  (* BENCH_PR3.json at the repo root: the sweep's headline numbers, one
     point per server count.  CI validates presence and well-formedness. *)
  let open Strip_obs in
  let point (m : Experiment.metrics) =
    Json.Obj
      [
        ("servers", Json.Int m.Experiment.servers);
        ("makespan_s", Json.Float m.Experiment.makespan_s);
        ( "recompute_throughput_per_s",
          Json.Float m.Experiment.recompute_throughput_per_s );
        ("p99_recompute_latency_us", Json.Float m.Experiment.p99_recompute_us);
        ( "staleness_p99_s",
          match List.assoc_opt "comp_prices" m.Experiment.staleness with
          | Some (s : Histogram.summary) -> Json.Float s.p99
          | None -> Json.Null );
        ( "per_server_utilization",
          Json.List
            (List.map (fun u -> Json.Float u) m.Experiment.per_server_utilization)
        );
        ("n_lock_waits", Json.Int m.Experiment.n_lock_waits);
        ("n_lock_timeouts", Json.Int m.Experiment.n_lock_timeouts);
      ]
  in
  let doc =
    Json.Obj
      [
        ( "benchmark",
          Json.Str "multi-server sweep (comp_prices/non-unique, overloaded)" );
        ("scale", Json.Float sw_scale);
        ("cost_slowdown", Json.Float slowdown);
        ("sweep", Json.List (List.map point ms));
      ]
  in
  let oc = open_out "BENCH_PR3.json" in
  Json.to_channel oc doc;
  close_out oc;
  Printf.printf "wrote server-sweep results to BENCH_PR3.json\n%!"

(* ================================================================== *)
(* Robustness: fault injection, retry convergence, overload shedding.   *)

let robustness () =
  section "Robustness (fault injection / retry / overload shedding)";
  let rb_scale = Float.min scale 0.25 in
  let base rule delay =
    let cfg = Experiment.default_config rule ~delay in
    Experiment.quick cfg rb_scale
  in

  (* 1. Convergence under injected aborts: 10% of task transactions abort
     just before commit; every failure must be retried (or, at worst,
     dead-lettered — never silently lost) and the maintained views must
     still match full recomputation. *)
  Printf.printf
    "\n1. convergence under 10%% injected transaction aborts (seed 42)\n%!";
  List.iter
    (fun rule ->
      (* 8 attempts: at a 10% abort rate the per-task dead-letter
         probability is 1e-8, so across the run's ~30k tasks no batch may
         be lost and the views must converge exactly.  (The default 5
         attempts leave ~1e-5 per task — a streak long enough to
         dead-letter one batch shows up every few seeds.) *)
      let cfg =
        Experiment.with_faults ~seed:42
          ~retry:{ Strip_sim.Engine.default_retry with max_attempts = 8 }
          ~abort_rate:0.1 (base rule 1.0)
      in
      let m = Experiment.run cfg in
      Report.print_metrics_header ();
      Report.print_metrics m;
      Report.print_failures m;
      let accounted = m.Experiment.n_retries + m.Experiment.n_dead_letters in
      if m.Experiment.n_aborts > accounted then begin
        Printf.printf
          "ROBUSTNESS FAILED: %d aborts but only %d retried+dead-lettered\n"
          m.Experiment.n_aborts accounted;
        exit 1
      end;
      if m.Experiment.verified <> Some true then begin
        Printf.printf
          "ROBUSTNESS FAILED: %s did not converge under faults (max error %g)\n"
          m.Experiment.label m.Experiment.max_abs_error;
        exit 1
      end)
    [
      Experiment.Comp_view Comp_rules.Unique_on_symbol;
      Experiment.Option_view Option_rules.Unique_on_symbol;
    ];
  Printf.printf "   every abort retried or dead-lettered; views converged\n%!";

  (* 2. Forced overload: a tiny watermark makes the engine shed delayed
     recompute batches.  The run must still drain (the engine stays live)
     and every shed must be counted.  Shedding rule work necessarily
     sacrifices view freshness, so verification is off here — the point is
     graceful degradation, not correctness. *)
  Printf.printf "\n2. forced overload (watermark 4, drop policy)\n%!";
  let cfg = base (Experiment.Comp_view Comp_rules.Unique_on_comp) 2.0 in
  let cfg =
    {
      cfg with
      Experiment.verify = false;
      overload =
        Some
          {
            Strip_sim.Engine.high_watermark = 4;
            shed_policy = Strip_sim.Engine.Drop;
          };
    }
  in
  let m = Experiment.run cfg in
  Report.print_failures m;
  if m.Experiment.n_sheds = 0 then begin
    Printf.printf "ROBUSTNESS FAILED: overload run shed nothing\n";
    exit 1
  end;
  Printf.printf "   engine stayed live: %d updates served, %d batches shed\n%!"
    m.Experiment.n_updates m.Experiment.n_sheds

(* ================================================================== *)
(* Crash recovery: WAL + fuzzy checkpoints (PR4).                      *)

let recovery_sweep () =
  section "Crash recovery (WAL + fuzzy checkpoints)";
  let rc_scale = Float.min scale 0.05 in
  let cfg0 =
    Experiment.quick
      (Experiment.default_config
         (Experiment.Comp_view Comp_rules.Unique_on_symbol) ~delay:1.0)
      rc_scale
  in
  let duration = cfg0.Experiment.feed.Strip_market.Feed.duration in
  let crash_at = duration /. 2.0 in
  Printf.printf
    "\ncheckpoint-interval sweep: one crash at t=%.0fs of a %.0fs feed; \
     denser checkpoints must shrink the redo work\n%!"
    crash_at duration;
  let run_at checkpoint_every =
    let cfg =
      {
        cfg0 with
        Experiment.recovery =
          Some
            {
              Experiment.default_recovery with
              Experiment.checkpoint_every;
              crash_at = Some crash_at;
            };
      }
    in
    let m = Experiment.run cfg in
    let r = Option.get m.Experiment.recovery in
    Printf.printf
      "   checkpoint %-5s %2d checkpoints; redo %5d commits / %5d ops; \
       requeued %3d; recovery %.3fs; wal %.3fs cpu; checkpoint %.3fs cpu; \
       audit %s\n%!"
      (match checkpoint_every with
      | Some s -> Printf.sprintf "%gs" s
      | None -> "off")
      r.Experiment.n_checkpoints r.Experiment.redo_commits
      r.Experiment.redo_ops r.Experiment.requeued
      r.Experiment.total_recovery_s r.Experiment.wal_overhead_s
      r.Experiment.checkpoint_overhead_s
      (if r.Experiment.audit_clean then "clean" else "DIVERGENT");
    if m.Experiment.verified <> Some true then begin
      Printf.printf
        "RECOVERY FAILED: crashy run did not converge (max error %g)\n"
        m.Experiment.max_abs_error;
      exit 1
    end;
    if not r.Experiment.audit_clean then begin
      Printf.printf "RECOVERY FAILED: final audit divergent (%d keys)\n"
        r.Experiment.audit_divergences;
      exit 1
    end;
    (checkpoint_every, r)
  in
  let intervals = [ Some 1.0; Some 5.0; Some 30.0; None ] in
  let points = List.map run_at intervals in
  (* Denser checkpoints must mean less log to redo: the replayed commit
     count may not grow as the interval shrinks, and the densest setting
     must replay strictly less than no checkpointing at all. *)
  let redo (_, (r : Experiment.recovery_metrics)) =
    r.Experiment.redo_commits
  in
  let rec check_monotone = function
    | a :: b :: rest ->
      if redo a > redo b then begin
        Printf.printf
          "RECOVERY FAILED: redo work grew as checkpoints densified (%d \
           commits vs %d)\n"
          (redo a) (redo b);
        exit 1
      end;
      check_monotone (b :: rest)
    | _ -> ()
  in
  check_monotone points;
  (match (points, List.rev points) with
  | densest :: _, loosest :: _ when redo densest >= redo loosest ->
    Printf.printf
      "RECOVERY FAILED: 1s checkpoints redo as much as no checkpoints (%d \
       vs %d commits)\n"
      (redo densest) (redo loosest);
    exit 1
  | _ -> ());
  (* BENCH_PR4.json at the repo root: recovery cost vs checkpoint
     interval.  CI validates presence, shape, and the shrinking-redo
     property. *)
  let open Strip_obs in
  let point (every, (r : Experiment.recovery_metrics)) =
    Json.Obj
      [
        ( "checkpoint_every_s",
          match every with Some s -> Json.Float s | None -> Json.Null );
        ("n_checkpoints", Json.Int r.Experiment.n_checkpoints);
        ("redo_commits", Json.Int r.Experiment.redo_commits);
        ("redo_ops", Json.Int r.Experiment.redo_ops);
        ("requeued", Json.Int r.Experiment.requeued);
        ("restored_rows", Json.Int r.Experiment.restored_rows);
        ("recovery_s", Json.Float r.Experiment.total_recovery_s);
        ("wal_overhead_s", Json.Float r.Experiment.wal_overhead_s);
        ("checkpoint_overhead_s", Json.Float r.Experiment.checkpoint_overhead_s);
        ("audit_clean", Json.Bool r.Experiment.audit_clean);
      ]
  in
  let doc =
    Json.Obj
      [
        ( "benchmark",
          Json.Str
            "crash recovery sweep (comp_prices/unique-on-symbol, one crash \
             at half the feed)" );
        ("scale", Json.Float rc_scale);
        ("crash_at_s", Json.Float crash_at);
        ("sweep", Json.List (List.map point points));
      ]
  in
  let oc = open_out "BENCH_PR4.json" in
  Json.to_channel oc doc;
  close_out oc;
  Printf.printf "wrote recovery-sweep results to BENCH_PR4.json\n%!"

(* ================================================================== *)
(* Replication: WAL log shipping + read replicas (PR5).                *)

let replica_sweep () =
  section "Replication (WAL shipping + read replicas)";
  let rp_scale = Float.min scale 0.05 in
  let cfg0 =
    Experiment.quick
      (Experiment.default_config
         (Experiment.Comp_view Comp_rules.Unique_on_symbol) ~delay:1.0)
      rp_scale
  in
  let duration = cfg0.Experiment.feed.Strip_market.Feed.duration in
  (* An open-loop read pump whose offered load exceeds even the largest
     cluster's service capacity: every configuration is saturated, so read
     throughput must scale with the lane count (primary + replicas) and
     queueing — hence p99 read latency — must shrink. *)
  let read_rate = 200.0 in
  let read_cost_s = 0.03 in
  Printf.printf
    "\nreplica sweep: %.0f reads/s offered for %.0fs (%.0fms/read service) \
     against 0/1/2/4 replicas, policy any; read throughput must rise and \
     p99 read latency fall as replicas are added\n%!"
    read_rate duration (read_cost_s *. 1000.0);
  let run_at replicas =
    let cfg =
      {
        cfg0 with
        Experiment.repl =
          Some
            {
              Experiment.default_repl with
              Experiment.replicas;
              read_policy = Strip_repl.Cluster.Any;
              read_rate;
              read_cost_s;
            };
      }
    in
    let m = Experiment.run cfg in
    let r = Option.get m.Experiment.repl in
    let p99 =
      match r.Experiment.read_latency with
      | Some s -> s.Strip_obs.Histogram.p99
      | None -> nan
    in
    Printf.printf
      "   replicas %d: %5d reads (%5d primary / %5d replica); throughput \
       %6.1f/s; p99 %8.1fms; %5d segments shipped (%d dropped)\n%!"
      replicas r.Experiment.n_reads r.Experiment.reads_primary
      r.Experiment.reads_replica r.Experiment.read_throughput_per_s
      (p99 *. 1000.0) r.Experiment.segments_sent r.Experiment.segments_dropped;
    if m.Experiment.verified <> Some true then begin
      Printf.printf
        "REPLICATION FAILED: replicated run did not converge (max error %g)\n"
        m.Experiment.max_abs_error;
      exit 1
    end;
    (replicas, r.Experiment.read_throughput_per_s, p99)
  in
  let points = List.map run_at [ 0; 1; 2; 4 ] in
  let rec check = function
    | (na, ta, pa) :: ((nb, tb, pb) :: _ as rest) ->
      if tb <= ta then begin
        Printf.printf
          "REPLICATION FAILED: read throughput did not rise from %d to %d \
           replicas (%.1f/s vs %.1f/s)\n"
          na nb ta tb;
        exit 1
      end;
      if pb >= pa then begin
        Printf.printf
          "REPLICATION FAILED: p99 read latency did not fall from %d to %d \
           replicas (%.1fms vs %.1fms)\n"
          na nb (pa *. 1000.0) (pb *. 1000.0);
        exit 1
      end;
      check rest
    | _ -> ()
  in
  check points;
  (* BENCH_PR5.json at the repo root: read scaling vs replica count.  CI
     validates presence, shape, and the monotone-throughput property. *)
  let open Strip_obs in
  let point (replicas, throughput, p99) =
    Json.Obj
      [
        ("replicas", Json.Int replicas);
        ("read_throughput_per_s", Json.Float throughput);
        ("read_p99_latency_s", Json.Float p99);
      ]
  in
  let doc =
    Json.Obj
      [
        ( "benchmark",
          Json.Str
            "replica sweep (comp_prices/unique-on-symbol, saturating \
             open-loop read pump, policy any)" );
        ("scale", Json.Float rp_scale);
        ("read_rate_per_s", Json.Float read_rate);
        ("read_cost_s", Json.Float read_cost_s);
        ("sweep", Json.List (List.map point points));
      ]
  in
  let oc = open_out "BENCH_PR5.json" in
  Json.to_channel oc doc;
  close_out oc;
  Printf.printf "wrote replica-sweep results to BENCH_PR5.json\n%!"

(* ------------------------------------------------------------------ *)
(* PR 6: the chaos lane.  A seeded sweep of fault schedules — crashes,
   partitions, drop bursts, checkpoint races — each run as a full
   replicated, durable experiment and checked against the explorer's
   five invariants.  The gate is absolute: any violation fails the
   bench.  BENCH_PR6.json captures the whole sweep for CI. *)

let chaos_lane () =
  let n_schedules =
    max 25 (int_of_float (env_float "STRIP_BENCH_CHAOS_SCHEDULES" 25.0))
  in
  let seed = int_of_float (env_float "STRIP_BENCH_CHAOS_SEED" 7.0) in
  let chaos_scale = env_float "STRIP_BENCH_CHAOS_SCALE" 0.05 in
  Printf.printf
    "\n== Chaos lane: %d seeded fault schedules (seed %d, scale %g) ==\n%!"
    n_schedules seed chaos_scale;
  let outcomes =
    Strip_chaos.Explore.explore ~scale:chaos_scale ~seed
      ~schedules:n_schedules ()
  in
  Strip_chaos.Explore.print_summary outcomes;
  let open Strip_obs in
  let doc = Strip_chaos.Explore.summary_json ~seed ~scale:chaos_scale outcomes in
  let oc = open_out "BENCH_PR6.json" in
  Json.to_channel oc doc;
  close_out oc;
  Printf.printf "wrote chaos-lane results to BENCH_PR6.json\n%!";
  let violations = Strip_chaos.Explore.total_violations outcomes in
  if violations > 0 then begin
    Printf.printf
      "CHAOS FAILED: %d invariant violation(s) across the sweep\n" violations;
    List.iter
      (fun (o : Strip_chaos.Explore.outcome) ->
        if o.Strip_chaos.Explore.violations <> [] then begin
          Printf.printf "  shrinking seed %d...\n%!"
            o.Strip_chaos.Explore.schedule.Strip_chaos.Schedule.seed;
          let shrunk = Strip_chaos.Explore.shrink o.Strip_chaos.Explore.schedule in
          let file =
            Printf.sprintf "chaos_failure_seed%d.json"
              o.Strip_chaos.Explore.schedule.Strip_chaos.Schedule.seed
          in
          let oc = open_out file in
          output_string oc
            (Strip_chaos.Schedule.to_string
               shrunk.Strip_chaos.Explore.schedule);
          close_out oc;
          Printf.printf "  reproducer: strip-cli chaos --replay %s\n%!" file
        end)
      outcomes;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* PR 9: the storage-fault lane.  A seeded sweep of media-fault
   schedules — at-rest bit rot on the WAL and checkpoint images, lying
   fsyncs, disk-full backpressure, half of them racing a crash or a
   partition — each run as a full replicated durable experiment and
   checked against the explorer's invariants, now including
   no_silent_corruption and salvage_converges.  Any violation writes a
   quarantine report (the outcome's full media ledger plus a shrunk
   reproducer) and fails the bench.

   The lane then isolates the salvage ladder: the same WAL-bitrot run
   with replicas (rung 1: re-fetch clean bytes and splice in place)
   versus without (rung 2: emergency checkpoint and truncate the
   retained log away).  The gate is the rungs' byte cost: replica-served
   salvage must rewrite strictly fewer bytes than checkpoint-based
   repair destroys, which is the whole reason the ladder tries replicas
   first.  BENCH_PR9.json captures the sweep and the comparison. *)

let storage_lane () =
  let n_schedules =
    max 6 (int_of_float (env_float "STRIP_BENCH_STORAGE_SCHEDULES" 6.0))
  in
  let seed = int_of_float (env_float "STRIP_BENCH_STORAGE_SEED" 11.0) in
  let st_scale = env_float "STRIP_BENCH_STORAGE_SCALE" 0.05 in
  Printf.printf
    "\n== Storage-fault lane: %d seeded media-fault schedules (seed %d, \
     scale %g) ==\n%!"
    n_schedules seed st_scale;
  let outcomes =
    Strip_chaos.Explore.explore_storage ~scale:st_scale ~seed
      ~schedules:n_schedules ()
  in
  Strip_chaos.Explore.print_summary outcomes;
  let open Strip_obs in
  let violations = Strip_chaos.Explore.total_violations outcomes in
  if violations > 0 then begin
    Printf.printf
      "STORAGE FAILED: %d invariant violation(s) across the sweep\n"
      violations;
    List.iter
      (fun (o : Strip_chaos.Explore.outcome) ->
        if o.Strip_chaos.Explore.violations <> [] then begin
          let sched_seed =
            o.Strip_chaos.Explore.schedule.Strip_chaos.Schedule.seed
          in
          Printf.printf "  shrinking seed %d...\n%!" sched_seed;
          let shrunk =
            Strip_chaos.Explore.shrink o.Strip_chaos.Explore.schedule
          in
          let file = Printf.sprintf "quarantine_report_seed%d.json" sched_seed in
          let oc = open_out file in
          Json.to_channel oc
            (Json.Obj
               [
                 ("outcome", Strip_chaos.Explore.outcome_json o);
                 ( "reproducer",
                   Strip_chaos.Schedule.to_json
                     shrunk.Strip_chaos.Explore.schedule );
               ]);
          close_out oc;
          Printf.printf "  quarantine report: %s (replay with: strip-cli \
                         chaos --replay %s)\n%!" file file
        end)
      outcomes;
    exit 1
  end;
  (* Salvage micro-comparison: one WAL bit-rot mid-run plus a crash later,
     scrubber on.  With replicas the scrubber splices clean bytes back
     (rung 1); without, it must take an emergency checkpoint and truncate
     the retained log (rung 2). *)
  let salvage_run replicas =
    Strip_txn.Task.reset_ids ();
    let cfg =
      Experiment.quick
        (Experiment.default_config
           (Experiment.Comp_view Comp_rules.Unique_on_comp) ~delay:0.5)
        st_scale
    in
    let dur = cfg.Experiment.feed.Strip_market.Feed.duration in
    let cfg =
      {
        cfg with
        Experiment.verify = true;
        storage = Some { Experiment.scrub_every = Some 1.0; retain = 2 };
        recovery = Some Experiment.default_recovery;
        repl =
          (if replicas > 0 then
             Some { Experiment.default_repl with Experiment.replicas }
           else None);
        chaos =
          [
            Experiment.Bitrot_at
              { at = 0.42 *. dur; target = `Wal; frac = 0.9 };
            Experiment.Crash_at (0.7 *. dur);
          ];
      }
    in
    let m = Experiment.run cfg in
    if m.Experiment.verified <> Some true then begin
      Printf.printf
        "STORAGE FAILED: salvage run (replicas %d) did not converge (max \
         error %g)\n"
        replicas m.Experiment.max_abs_error;
      exit 1
    end;
    match m.Experiment.storage with
    | None ->
      Printf.printf
        "STORAGE FAILED: salvage run (replicas %d) has no storage metrics\n"
        replicas;
      exit 1
    | Some st ->
      if st.Experiment.faults_outstanding > 0 || not st.Experiment.final_clean
      then begin
        Printf.printf
          "STORAGE FAILED: salvage run (replicas %d) left media faults \
           behind (%d outstanding, clean %b)\n"
          replicas st.Experiment.faults_outstanding st.Experiment.final_clean;
        exit 1
      end;
      st
  in
  Printf.printf
    "\nsalvage comparison: WAL bit-rot + later crash, scrubber every 1s\n%!";
  let with_replicas = salvage_run 2 in
  let without = salvage_run 0 in
  let describe tag (st : Experiment.storage_metrics) =
    Printf.printf
      "   %-16s repaired %d from replicas / %d from checkpoints; spliced \
       %dB, expunged %dB; salvage cpu %.1fms\n%!"
      tag st.Experiment.repaired_replica st.Experiment.repaired_checkpoint
      st.Experiment.scrub_salvaged_bytes st.Experiment.scrub_expunged_bytes
      (1e3 *. st.Experiment.salvage_s)
  in
  describe "replicas=2" with_replicas;
  describe "replicas=0" without;
  if with_replicas.Experiment.repaired_replica < 1 then begin
    Printf.printf
      "STORAGE FAILED: replicated salvage run never served a repair from a \
       replica\n";
    exit 1
  end;
  if without.Experiment.repaired_checkpoint < 1 then begin
    Printf.printf
      "STORAGE FAILED: replica-free salvage run never fell back to the \
       checkpoint rung\n";
    exit 1
  end;
  if
    with_replicas.Experiment.scrub_salvaged_bytes
    >= without.Experiment.scrub_expunged_bytes
  then begin
    Printf.printf
      "STORAGE FAILED: replica-served salvage (%dB spliced) did not beat \
       checkpoint-based repair (%dB of redo log destroyed)\n"
      with_replicas.Experiment.scrub_salvaged_bytes
      without.Experiment.scrub_expunged_bytes;
    exit 1
  end;
  let doc =
    Json.Obj
      [
        ( "benchmark",
          Json.Str
            "storage-fault lane (media-fault schedule sweep + salvage \
             rung comparison)" );
        ("seed", Json.Int seed);
        ("scale", Json.Float st_scale);
        ("schedules", Json.Int n_schedules);
        ("violations", Json.Int violations);
        ( "sweep",
          Json.List (List.map Strip_chaos.Explore.outcome_json outcomes) );
        ( "salvage_comparison",
          Json.Obj
            [
              ("replicas_2", Report.storage_json with_replicas);
              ("replicas_0", Report.storage_json without);
              ( "replica_salvaged_bytes",
                Json.Int with_replicas.Experiment.scrub_salvaged_bytes );
              ( "checkpoint_expunged_bytes",
                Json.Int without.Experiment.scrub_expunged_bytes );
            ] );
      ]
  in
  let oc = open_out "BENCH_PR9.json" in
  Json.to_channel oc doc;
  close_out oc;
  Printf.printf "wrote storage-fault results to BENCH_PR9.json\n%!"

(* ------------------------------------------------------------------ *)
(* PR 10: the shard sweep.  Partition the write path across 1/2/4/8
   shard primaries under the same de-rated CPU as the server sweep, so
   a single primary cannot keep up with the feed.  Base rows are
   hash-partitioned on symbol and every shard runs its own engine, WAL
   and checkpoints; composites whose members live on other shards are
   maintained through shipped weighted partial deltas, so the sweep
   exercises the full cross-shard protocol at every point.  The
   non-unique rule keeps total maintenance work fixed, so adding shard
   primaries must raise write throughput (updates applied per simulated
   second of makespan) monotonically — that is the gate — and the
   cross-shard composite audit must come back clean at every point.
   Every point, including shards=1, goes through Shard_exp.run, so all
   pay identical durability and coordinator machinery and the sweep
   isolates partitioning itself.  BENCH_PR10.json captures the curve
   for CI. *)

let shard_sweep () =
  section "Shard sweep (partitioned write path, cross-shard composites)";
  let sh_scale = Float.min scale 0.05 in
  let slowdown = 250.0 in
  let slow =
    Cost_model.create
      (List.map
         (fun (name, us) -> (name, us *. slowdown))
         (Cost_model.entries Cost_model.default))
  in
  let run_at shards =
    let cfg =
      Experiment.default_config (Experiment.Comp_view Comp_rules.Non_unique)
        ~delay:0.0
    in
    let cfg = Experiment.quick cfg sh_scale in
    let cfg =
      {
        cfg with
        Experiment.cost = slow;
        verify = true;
        shard = Some (Experiment.default_shard ~shards);
      }
    in
    let m = Shard_exp.run cfg in
    Report.print_metrics m;
    Report.print_shard m;
    if m.Experiment.verified <> Some true then begin
      Printf.printf
        "SHARD SWEEP FAILED: %d-shard run did not converge (max error %g)\n"
        shards m.Experiment.max_abs_error;
      exit 1
    end;
    let s =
      match m.Experiment.shard with
      | Some s -> s
      | None ->
        Printf.printf "SHARD SWEEP FAILED: %d-shard run has no shard metrics\n"
          shards;
        exit 1
    in
    if s.Experiment.cross_divergences > 0 then begin
      Printf.printf
        "SHARD SWEEP FAILED: cross-shard audit divergent at %d shards (%d of \
         %d composites)\n"
        shards s.Experiment.cross_divergences s.Experiment.cross_checks;
      exit 1
    end;
    (m, s)
  in
  Report.print_metrics_header ();
  let points = List.map run_at [ 1; 2; 4; 8 ] in
  let write_tput ((m : Experiment.metrics), _) =
    float_of_int m.Experiment.n_updates /. m.Experiment.makespan_s
  in
  let rec check_monotone = function
    | ((_, (sa : Experiment.shard_metrics)) as a)
      :: ((_, (sb : Experiment.shard_metrics)) as b)
      :: rest ->
      if write_tput b <= write_tput a then begin
        Printf.printf
          "SHARD SWEEP FAILED: write throughput did not improve %d -> %d \
           shards (%.2f/s -> %.2f/s)\n"
          sa.Experiment.n_shards sb.Experiment.n_shards (write_tput a)
          (write_tput b);
        exit 1
      end;
      check_monotone (b :: rest)
    | _ -> ()
  in
  check_monotone points;
  (* BENCH_PR10.json at the repo root: the sweep's headline numbers, one
     point per shard count.  CI validates presence, shape, and the
     monotone write-throughput property. *)
  let open Strip_obs in
  let point ((m : Experiment.metrics), (s : Experiment.shard_metrics)) =
    Json.Obj
      [
        ("shards", Json.Int s.Experiment.n_shards);
        ("makespan_s", Json.Float m.Experiment.makespan_s);
        ( "write_throughput_per_s",
          Json.Float
            (float_of_int m.Experiment.n_updates /. m.Experiment.makespan_s) );
        ("n_updates", Json.Int m.Experiment.n_updates);
        ("partials_shipped", Json.Int s.Experiment.sh_partials);
        ("msgs_sent", Json.Int s.Experiment.sh_msgs);
        ("bytes_shipped", Json.Int s.Experiment.sh_bytes);
        ("acks_sent", Json.Int s.Experiment.sh_acks);
        ("reships", Json.Int s.Experiment.sh_reships);
        ("cross_checks", Json.Int s.Experiment.cross_checks);
        ("cross_divergences", Json.Int s.Experiment.cross_divergences);
        ( "audit_clean",
          Json.Bool (s.Experiment.cross_divergences = 0) );
      ]
  in
  let doc =
    Json.Obj
      [
        ( "benchmark",
          Json.Str
            "shard sweep (comp_prices/non-unique, hash-partitioned write \
             path, overloaded)" );
        ("scale", Json.Float sh_scale);
        ("cost_slowdown", Json.Float slowdown);
        ("sweep", Json.List (List.map point points));
      ]
  in
  let oc = open_out "BENCH_PR10.json" in
  Json.to_channel oc doc;
  close_out oc;
  Printf.printf "wrote shard-sweep results to BENCH_PR10.json\n%!"

(* ------------------------------------------------------------------ *)
(* --wallclock: real elapsed time per simulated transaction for
   representative end-to-end scenarios.  The simulator reports virtual
   seconds everywhere else; this lane answers the orthogonal question
   "how fast does the harness itself run on this machine", so perf
   regressions in the engine/WAL/shipping code paths show up even though
   every simulated metric is deterministic.  Median of 5 runs per
   scenario; each trial rebuilds its config (fresh trace/monitor state)
   and resets the task/span counters, so trials are identical work. *)

let wallclock_lane () =
  section "Wall-clock scenarios (real ns per transaction, median of 5)";
  (* The lane measures the harness, not the allocator: a small default
     minor heap makes the timings mostly GC noise at this working-set
     size.  Pin a larger minor heap and a lazier major GC for the
     measurement process so trials see the code, and drain major-GC debt
     between trials so one trial's garbage is not another's pause. *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = 2 * 1024 * 1024; space_overhead = 256 };
  let wc_scale = Float.min scale 0.02 in
  let trials = 5 in
  let base rule delay =
    let cfg = Experiment.default_config rule ~delay in
    let cfg = Experiment.quick cfg wc_scale in
    { cfg with Experiment.verify = false }
  in
  let symbol = Experiment.Comp_view Comp_rules.Unique_on_symbol in
  let scenarios =
    [
      ( "non-unique",
        fun () -> base (Experiment.Comp_view Comp_rules.Non_unique) 0.0 );
      ("unique-on-symbol", fun () -> base symbol 1.0);
      ( "crash-recovery",
        fun () ->
          let cfg = base symbol 1.0 in
          let half = cfg.Experiment.feed.Strip_market.Feed.duration /. 2.0 in
          {
            cfg with
            Experiment.recovery =
              Some
                {
                  Experiment.default_recovery with
                  Experiment.crash_at = Some half;
                };
          } );
      ( "replicated-2",
        fun () ->
          {
            (base symbol 1.0) with
            Experiment.repl =
              Some { Experiment.default_repl with Experiment.replicas = 2 };
          } );
      ( "traced+slo",
        fun () ->
          {
            (base symbol 1.0) with
            Experiment.trace = Some (Strip_obs.Trace.create ());
            slo =
              Some
                (Strip_obs.Slo.create
                   [ { Strip_obs.Slo.view = "comp_prices"; bound_s = 5.0 } ]);
          } );
    ]
  in
  let time_one mk_cfg =
    Strip_txn.Task.reset_ids ();
    let cfg = mk_cfg () in
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let m = Experiment.run cfg in
    let elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    (elapsed_ns, m.Experiment.n_updates + m.Experiment.n_recompute)
  in
  let median l =
    match List.sort compare l with
    | [] -> nan
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  Printf.printf "%-20s %8s %14s %14s\n" "scenario" "txns" "median ns/op"
    "median ms/run";
  let points =
    List.map
      (fun (name, mk_cfg) ->
        let runs = List.init trials (fun _ -> time_one mk_cfg) in
        let ops = snd (List.hd runs) in
        let ns_per_op =
          List.map
            (fun (ns, n) -> if n = 0 then nan else ns /. float_of_int n)
            runs
        in
        let med = median ns_per_op in
        let med_run_ms = median (List.map fst runs) /. 1e6 in
        Printf.printf "%-20s %8d %14.0f %14.1f\n%!" name ops med med_run_ms;
        (name, ops, med, ns_per_op))
      scenarios
  in
  let open Strip_obs in
  let doc =
    Json.Obj
      [
        ("benchmark", Json.Str "wall-clock scenario timings");
        ("scale", Json.Float wc_scale);
        ("trials", Json.Int trials);
        ( "scenarios",
          Json.List
            (List.map
               (fun (name, ops, med, ns_per_op) ->
                 Json.Obj
                   [
                     ("name", Json.Str name);
                     ("transactions", Json.Int ops);
                     ("median_ns_per_op", Json.Float med);
                     ( "ns_per_op",
                       Json.List (List.map (fun v -> Json.Float v) ns_per_op)
                     );
                   ])
               points) );
      ]
  in
  let oc = open_out "BENCH_WALLCLOCK.json" in
  Json.to_channel oc doc;
  close_out oc;
  Printf.printf "wrote wall-clock timings to BENCH_WALLCLOCK.json\n%!"

let () =
  Printf.printf
    "STRIP reproduction benchmarks (paper: Adelberg, Garcia-Molina, Widom, \
     SIGMOD 1997)\n";
  if Sys.getenv_opt "STRIP_BENCH_SKIP_TABLE1" = None then bench_table1 ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_FIGURES" = None then figures ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_ABLATIONS" = None then ablations ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_SWEEP" = None then server_sweep ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_ROBUSTNESS" = None then robustness ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_RECOVERY" = None then recovery_sweep ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_REPLICATION" = None then replica_sweep ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_CHAOS" = None then chaos_lane ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_STORAGE" = None then storage_lane ();
  if Sys.getenv_opt "STRIP_BENCH_SKIP_SHARD" = None then shard_sweep ();
  if !wallclock then wallclock_lane ();
  if observing () then write_exports ()
